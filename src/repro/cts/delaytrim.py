"""Delay-trim cost model: load pad vs. series root snake.

Two mechanisms insert a controlled delay at a buffered stage's root:

* a **load pad** of ``C_pad`` fF delays by ``r_drive * C_pad`` — cheap
  when the driver is small (high ``r_drive``);
* a **series snake** of length ``L`` (a routing detour between the
  buffer output and the stage tree) delays by
  ``r_um * L * (C_stage + c_um * L / 2)`` at a capacitance cost of
  ``c_um * L`` — cheap when the stage load is large.

Both are standard CTS trim moves; :func:`cheapest_trim` picks whichever
buys the needed delay with less added capacitance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TrimChoice:
    """One delay-trim decision."""

    pad_cap: float      # fF of dummy load (0 when snaking)
    snake_len: float    # um of series detour (0 when padding)
    added_cap: float    # total capacitance cost, fF


def snake_length_for_delay(gap: float, stage_load: float,
                           r_per_um: float, c_per_um: float) -> float:
    """Series-snake length whose delay equals ``gap`` ps into ``stage_load``."""
    if gap <= 0.0:
        return 0.0
    if r_per_um <= 0.0 or c_per_um <= 0.0:
        raise ValueError("snake RC coefficients must be positive")
    a = r_per_um * c_per_um / 2.0
    b = r_per_um * stage_load
    disc = b * b + 4.0 * a * gap
    return (-b + math.sqrt(disc)) / (2.0 * a)


def cheapest_trim(gap: float, r_drive: float, stage_load: float,
                  r_per_um: float, c_per_um: float) -> TrimChoice:
    """Choose pad vs. snake for a delay of ``gap`` ps, minimising capacitance."""
    if gap <= 0.0:
        return TrimChoice(pad_cap=0.0, snake_len=0.0, added_cap=0.0)
    if r_drive <= 0.0:
        raise ValueError("driver resistance must be positive")
    pad = gap / r_drive
    snake = snake_length_for_delay(gap, stage_load, r_per_um, c_per_um)
    snake_cap = snake * c_per_um
    if snake_cap < pad:
        return TrimChoice(pad_cap=0.0, snake_len=snake, added_cap=snake_cap)
    return TrimChoice(pad_cap=pad, snake_len=0.0, added_cap=pad)
