"""Connection topology generation: recursive geometric bisection.

The classic "means and medians" construction: recursively split the
sink set in half along its wider dimension (at the median), producing a
balanced binary abstract tree.  Balance matters twice over — it keeps
nominal skew near zero after embedding, and it lets level-based buffer
insertion stay symmetric.
"""

from __future__ import annotations

from repro.cts.tree import ClockTree
from repro.netlist.cell import Pin


def build_topology(sink_pins: list[Pin]) -> ClockTree:
    """Build a balanced binary clock-tree topology over ``sink_pins``.

    Leaves are created at the sink pin locations; internal node
    locations are left at the origin for the embedder to place.
    """
    if not sink_pins:
        raise ValueError("cannot build a clock tree over zero sinks")
    tree = ClockTree()
    root_id = _split(tree, list(sink_pins))
    tree.set_root(root_id)
    return tree


def _split(tree: ClockTree, pins: list[Pin]) -> int:
    """Recursively partition ``pins``; returns the id of the subtree root."""
    if len(pins) == 1:
        node = tree.new_node(location=pins[0].location, sink_pin=pins[0])
        return node.node_id

    xs = [p.location.x for p in pins]
    ys = [p.location.y for p in pins]
    split_by_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    if split_by_x:
        pins = sorted(pins, key=lambda p: (p.location.x, p.location.y, p.full_name))
    else:
        pins = sorted(pins, key=lambda p: (p.location.y, p.location.x, p.full_name))
    half = len(pins) // 2
    left = _split(tree, pins[:half])
    right = _split(tree, pins[half:])
    parent = tree.new_node()
    tree.attach(parent.node_id, left)
    tree.attach(parent.node_id, right)
    return parent.node_id
