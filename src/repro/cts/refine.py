"""Post-routing skew refinement by hierarchical delay trimming.

The zero-skew embedding balances an idealised (unbuffered, isolated-RC)
model; after buffering, track snapping and neighbor-aware extraction, a
residual skew of 1-3% of latency remains.  This pass closes the loop
the way production CTS does with delay trimming: measure real arrivals,
then insert controlled delay ahead of the early sinks until they match
the latest one.

Two properties make the scheme cheap and stable:

* **Per-stage isolation.**  Trims live at buffer outputs (a dummy load
  pad or a series snake wire — whichever costs less capacitance, see
  :mod:`repro.cts.delaytrim`).  A trim at a buffer shifts exactly the
  subtree below it and is invisible upstream, so corrections never
  chase each other.
* **Hierarchical distribution.**  The *common* part of a subtree's gap
  is absorbed once, at the subtree's own root stage — where the stage
  load is large and a series snake buys picoseconds for very little
  capacitance — instead of being paid repeatedly in every leaf stage.
  Only the differential residue is trimmed at the leaves.  Without
  this, trim capacitance scales with (leaf stages x common gap) and
  dominates the power of large trees.

Trims are re-derived from scratch on every run (the ``trim_*`` fields
are zeroed first), so repeated refinement cannot ratchet capacitance
upward.  A slew guard caps each stage's trim so the *sink* transition
(driver slew RSS'd with the wire spread) stays inside the budget.

The added capacitance is real power cost (it lands in the power report
as delay-trim capacitance) — skew trimming is never free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cts.delaytrim import TrimChoice, cheapest_trim
from repro.cts.tree import ClockTree
from repro.extract.extractor import Extraction, extract
from repro.route.router import RoutingResult
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming, analyze_clock_timing
from repro.timing.slew import LN9


@dataclass(frozen=True)
class RefineResult:
    """Outcome of a skew-refinement run."""

    extraction: Extraction
    timing: ClockTiming
    iterations: int
    initial_skew: float
    final_skew: float
    added_pad_cap: float  # total trim capacitance, fF


def refine_skew(tree: ClockTree, routing: RoutingResult, tech: Technology,
                max_iterations: int = 3, target_skew: float = 1.0,
                damping: float = 0.9,
                offsets: dict | None = None,
                engine=None) -> RefineResult:
    """Iteratively trim early subtrees until all sinks meet the latest one.

    ``offsets`` (useful skew) maps flop clock-pin names to desired
    arrival offsets in ps: the trimmer equalises *offset-corrected*
    arrivals, so a flop with offset +10 lands 10 ps after the common
    base.  ``final_skew``/``initial_skew`` are reported in the corrected
    frame when offsets are given.

    With ``engine`` (an :class:`~repro.engine.AnalysisEngine` over the
    current routing), each trim pass rebuilds only the touched stages
    instead of re-extracting the whole network — a trim moves nothing
    but its own stage's root pad/snake.

    Returns the final extraction and timing so callers don't re-analyze.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    offsets = offsets or {}

    # Trims are re-derived from scratch every run (base pads/snakes from
    # buffer insertion stay) so repeated refinement never ratchets
    # capacitance upward.
    stale: set[int] = set()
    for node in tree:
        if node.trim_pad > 0.0 or node.trim_snake > 0.0:
            stale.add(node.node_id)
        node.trim_pad = 0.0
        node.trim_snake = 0.0

    rule = tech.default_rule
    layer_h = tech.layer_for(horizontal=True)
    snake_r = layer_h.resistance_per_um(rule.width_on(layer_h))
    snake_c = layer_h.isolated_cap_per_um(rule.width_on(layer_h))

    if engine is None:
        extraction = extract(tree, routing)
        timing = analyze_clock_timing(extraction.network, tech)
    else:
        if stale:
            engine.rebuild_stages(stale)
        extraction = engine.extraction
        timing = engine.static_timing()
    initial_skew = _corrected_skew(timing, offsets)
    iterations = 0
    for _ in range(max_iterations):
        if _corrected_skew(timing, offsets) <= target_skew:
            break
        iterations += 1
        touched = _trim_once(tree, extraction, timing, tech,
                             snake_r, snake_c, damping, target_skew, offsets)
        if not touched:
            break
        if engine is None:
            extraction = extract(tree, routing)
            timing = analyze_clock_timing(extraction.network, tech)
        else:
            engine.rebuild_stages(touched)
            timing = engine.static_timing()

    added_total = sum(n.trim_pad + n.trim_snake * n.snake_c_per_um
                      for n in tree)
    return RefineResult(
        extraction=extraction,
        timing=timing,
        iterations=iterations,
        initial_skew=initial_skew,
        final_skew=_corrected_skew(timing, offsets),
        added_pad_cap=added_total,
    )


def _corrected_skew(timing: ClockTiming, offsets: dict) -> float:
    """Skew in the offset-corrected frame (= plain skew when empty)."""
    if not offsets:
        return timing.skew
    corrected = [s.arrival - offsets.get(s.pin.full_name, 0.0)
                 for s in timing.sinks]
    return max(corrected) - min(corrected)


def _trim_once(tree: ClockTree, extraction: Extraction, timing: ClockTiming,
               tech: Technology, snake_r: float, snake_c: float,
               damping: float, target_skew: float,
               offsets: dict) -> set[int]:
    """One hierarchical trim pass; returns the trimmed tree node ids.

    Gaps are measured in the offset-corrected frame, so useful-skew
    targets fall out of the same machinery.
    """
    network = extraction.network
    arrival_of = {s.pin.full_name:
                  s.arrival - offsets.get(s.pin.full_name, 0.0)
                  for s in timing.sinks}
    latest = max(arrival_of.values())
    slew_of_pin = {s.pin.full_name: s.slew for s in timing.sinks}

    # Stage tree: children and per-stage flop gap minima.
    children: dict[int, list[int]] = {i: [] for i in range(len(network.stages))}
    own_min_gap: dict[int, float] = {}
    worst_sink_slew: dict[int, float] = {}
    for idx, stage in enumerate(network.stages):
        for sink in stage.sinks:
            if sink.is_flop:
                pin = sink.sink_pin.full_name
                gap = latest - arrival_of[pin]
                if idx not in own_min_gap or gap < own_min_gap[idx]:
                    own_min_gap[idx] = gap
                slew = slew_of_pin[pin]
                if slew > worst_sink_slew.get(idx, 0.0):
                    worst_sink_slew[idx] = slew
            else:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                children[idx].append(child)

    # Subtree min gap, bottom-up (stages were built parents-first).
    subtree_min: dict[int, float] = {}
    for idx in reversed(range(len(network.stages))):
        m = own_min_gap.get(idx, math.inf)
        for child in children[idx]:
            m = min(m, subtree_min[child])
        subtree_min[idx] = m

    touched: set[int] = set()
    # Top-down: absorb each subtree's common gap at its own root stage.
    # The network root absorbs nothing — delaying everyone equally only
    # adds latency — so the walk starts at its children.
    stack: list[tuple[int, float]] = [
        (child, 0.0) for child in children[network.root_stage]]
    while stack:
        idx, absorbed = stack.pop()
        take = max(0.0, subtree_min[idx] - absorbed)
        if take > target_skew / 2.0:
            trimmed = _apply_stage_trim(tree, network, idx, damping * take,
                                        worst_sink_slew, tech,
                                        snake_r, snake_c)
            if trimmed is not None:
                touched.add(trimmed)
                absorbed += damping * take
        for child in children[idx]:
            stack.append((child, absorbed))
    return touched


def _apply_stage_trim(tree: ClockTree, network, stage_idx: int, gap: float,
                      worst_sink_slew: dict[int, float], tech: Technology,
                      snake_r: float, snake_c: float) -> int | None:
    """Insert ``gap`` ps of delay at one stage, respecting slew limits.

    Returns the trimmed tree node id, or None if the slew guard killed
    the trim entirely.
    """
    stage = network.stages[stage_idx]
    driver = stage.driver
    load = stage.total_cap
    trim = cheapest_trim(gap, driver.r_drive, load, snake_r, snake_c)
    trim = _slew_limited(trim, gap, stage_idx, stage, worst_sink_slew, tech,
                         snake_r, snake_c)
    if trim.added_cap <= 0.0:
        return None
    node = tree.node(stage.tree_node_id)
    if node.snake_r_per_um <= 0.0:
        node.snake_r_per_um = snake_r
        node.snake_c_per_um = snake_c
    node.trim_pad += trim.pad_cap
    node.trim_snake += trim.snake_len
    return node.node_id


def _slew_limited(trim: TrimChoice, gap: float, stage_idx: int, stage,
                  worst_sink_slew: dict[int, float], tech: Technology,
                  snake_r: float, snake_c: float,
                  margin: float = 0.98) -> TrimChoice:
    """Scale a trim down until the stage's worst *sink* slew stays legal.

    The sink slew composes the driver transition with the wire spread
    (RSS); a load pad raises the driver term, a snake adds wire delay
    whose 10/90 spread is ``ln 9`` times it.  Halve the trim until the
    predicted sink slew fits (give up below 1% of the original).
    """
    driver = stage.driver
    load = stage.total_cap
    budget = margin * tech.max_slew
    current_sink = worst_sink_slew.get(stage_idx, 0.0)
    current_driver = driver.output_slew(load)
    # Wire-spread contribution already present at the worst sink.
    wire_sq = max(0.0, current_sink ** 2 - current_driver ** 2)

    scale = 1.0
    while scale > 0.01:
        pad = trim.pad_cap * scale
        snake = trim.snake_len * scale
        new_load = load + pad + snake * snake_c
        if new_load > driver.max_cap:
            scale /= 2.0
            continue
        new_driver = driver.output_slew(new_load)
        snake_delay = snake_r * snake * (load + snake_c * snake / 2.0)
        new_wire = math.sqrt(wire_sq) + LN9 * snake_delay
        predicted = math.sqrt(new_driver ** 2 + new_wire ** 2)
        if predicted <= budget or current_sink > budget:
            # (If the stage is already over budget from elsewhere, the
            # trim is not the cause; let the optimizer's slew planner
            # deal with it and don't block skew repair entirely.)
            if current_sink > budget and predicted > current_sink + 1e-9:
                scale /= 2.0
                continue
            break
        scale /= 2.0
    if scale <= 0.01:
        return TrimChoice(pad_cap=0.0, snake_len=0.0, added_cap=0.0)
    return TrimChoice(pad_cap=trim.pad_cap * scale,
                      snake_len=trim.snake_len * scale,
                      added_cap=trim.added_cap * scale)
