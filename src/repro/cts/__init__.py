"""Clock tree synthesis: topology, zero-skew embedding, buffering.

Substrate S4 in DESIGN.md.  The pipeline is the classic academic CTS
stack:

1. :func:`~repro.cts.topology.build_topology` — balanced binary
   connection topology over the sinks (recursive geometric bisection).
2. :func:`~repro.cts.embedding.embed_zero_skew` — bottom-up Elmore
   zero-skew merging (Tsay-style tapping points with wire snaking).
3. :func:`~repro.cts.buffering.insert_buffers` — symmetric, level-based
   slew-constrained buffer insertion.
4. :func:`~repro.cts.synthesize.synthesize_clock_tree` — the one-call
   driver used by the flow.
"""

from repro.cts.tree import ClockNode, ClockTree
from repro.cts.topology import build_topology
from repro.cts.embedding import embed_zero_skew
from repro.cts.buffering import insert_buffers
from repro.cts.synthesize import synthesize_clock_tree

__all__ = [
    "ClockNode",
    "ClockTree",
    "build_topology",
    "embed_zero_skew",
    "insert_buffers",
    "synthesize_clock_tree",
]
