"""One-call clock tree synthesis driver."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cts.buffering import BufferingResult, insert_buffers
from repro.cts.embedding import embed_zero_skew
from repro.cts.topology import build_topology
from repro.cts.tree import ClockTree
from repro.netlist.design import Design
from repro.tech.technology import Technology


@dataclass(frozen=True)
class CtsResult:
    """A synthesized clock tree plus its buffering summary."""

    tree: ClockTree
    buffering: BufferingResult


def synthesize_clock_tree(design: Design, tech: Technology,
                          max_stage_cap: float = 0.0) -> CtsResult:
    """Topology + zero-skew embedding + buffering for ``design``'s clock.

    The tree root is attached to the clock source: a dedicated top node
    at the source location is added above the merged tree so the first
    wire segment (source -> tree) is explicit and routable.  Internal
    nodes that the embedding placed inside a macro are nudged to the
    nearest macro edge (buffers cannot sit on hard blockages); the skew
    perturbation this causes is absorbed by the trim pass.
    """
    design.validate()
    assert design.clock_root is not None  # validate() guarantees this
    return synthesize_tree_for(design.clock_sinks,
                               design.clock_root.location, design, tech,
                               max_stage_cap=max_stage_cap)


def synthesize_tree_for(sinks, source, design: Design, tech: Technology,
                        max_stage_cap: float = 0.0) -> CtsResult:
    """Synthesize a clock tree over an explicit sink subset and source.

    The multi-domain entry point: each clock domain calls this with its
    own sinks and source point; ``design`` supplies the die and
    blockages.
    """
    if not sinks:
        raise ValueError("cannot synthesize a clock tree over zero sinks")
    tree = build_topology(list(sinks))
    embed_zero_skew(tree, tech)
    _nudge_off_blockages(tree, design)

    # Hang the tree from the clock source location.
    if tree.root.location != source:
        top = tree.insert_above(tree.root_id)
        top.location = source

    buffering = insert_buffers(tree, tech, max_stage_cap=max_stage_cap)
    # The root must carry a buffer (it is the clock driver); level 0 is
    # always selected by insert_buffers, but the root may have moved to
    # the new source node, which sits at depth 0 now.
    if tree.root.buffer is None:
        tree.root.buffer = tech.buffers.largest
    return CtsResult(tree=tree, buffering=buffering)


def _nudge_off_blockages(tree: ClockTree, design: Design,
                         margin: float = 1.0) -> None:
    """Move internal nodes out of hard macros, to the nearest edge."""
    if not design.blockages:
        return
    from repro.geom.point import Point

    for node in tree:
        if node.is_sink:
            continue  # sinks are placed instances, already legal
        for blockage in design.blockages:
            if not blockage.contains(node.location):
                continue
            x, y = node.location.x, node.location.y
            moves = [
                (abs(x - blockage.xlo), Point(blockage.xlo - margin, y)),
                (abs(blockage.xhi - x), Point(blockage.xhi + margin, y)),
                (abs(y - blockage.ylo), Point(x, blockage.ylo - margin)),
                (abs(blockage.yhi - y), Point(x, blockage.yhi + margin)),
            ]
            legal = [(d, p) for d, p in moves if design.die.contains(p)]
            if legal:
                node.location = min(legal)[1]
            break
