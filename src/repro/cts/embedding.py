"""Zero-skew embedding: Elmore-balanced merge points with wire snaking.

Bottom-up pass over the topology (Tsay's classic construction): each
internal node merges two subtrees whose root-to-sink Elmore delays are
``d1``/``d2`` and downstream capacitances ``c1``/``c2``.  With per-um
wire resistance ``r`` and capacitance ``c`` and Manhattan distance ``L``
between the subtree roots, the tapping point ``x`` (distance from child
1) that equalises delay satisfies a linear equation:

    x = (r c L^2 / 2 + r c2 L + d2 - d1) / (r (c L + c1 + c2))

If ``x`` falls outside ``[0, L]`` one side is intrinsically slower, so
the merge point sits at the faster subtree's root and the slower... the
*faster* side's wire is lengthened ("snaked") until delays match; the
detour length is the positive root of the wire-delay quadratic.

The embedding is done with default-rule RC values; the later rule
assignment perturbs segment RC slightly, which is exactly the skew
perturbation the optimizer's constraints watch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cts.tree import ClockTree
from repro.geom.segment import l_route
from repro.tech.technology import Technology


@dataclass
class _SubtreeState:
    """Elmore state of an embedded subtree, measured at its root."""

    delay: float  # root-to-sink delay, ps (equal to all sinks by construction)
    cap: float    # total downstream capacitance, fF


def _wire_delay(r: float, c: float, length: float, cload: float) -> float:
    """Elmore delay of a distributed-RC wire of ``length`` driving ``cload``."""
    return r * length * (c * length / 2.0 + cload)


def _snake_length(r: float, c: float, delay_gap: float, cload: float) -> float:
    """Wire length whose Elmore delay into ``cload`` equals ``delay_gap``.

    Solves ``r*l*(c*l/2 + cload) = delay_gap`` for ``l >= 0``.
    """
    if delay_gap <= 0.0:
        return 0.0
    a = r * c / 2.0
    b = r * cload
    disc = b * b + 4.0 * a * delay_gap
    return (-b + math.sqrt(disc)) / (2.0 * a)


def _point_along_route(src, dst, distance: float):
    """The point ``distance`` um along the L-route from src to dst."""
    remaining = distance
    for seg in l_route(src, dst):
        if remaining <= seg.length or seg.is_point:
            fraction = 0.0 if seg.is_point else remaining / seg.length
            return seg.point_at(min(1.0, max(0.0, fraction)))
        remaining -= seg.length
    return dst


def embed_zero_skew(tree: ClockTree, tech: Technology) -> None:
    """Place internal nodes and snaking for (nominal) zero skew, in place.

    Uses the default-rule RC of the clock layers (average of the H and V
    layers, since L-routes use both).
    """
    rule = tech.default_rule
    layer_h = tech.layer_for(horizontal=True)
    layer_v = tech.layer_for(horizontal=False)
    r = (layer_h.resistance_per_um(rule.width_on(layer_h))
         + layer_v.resistance_per_um(rule.width_on(layer_v))) / 2.0
    c = (layer_h.isolated_cap_per_um(rule.width_on(layer_h))
         + layer_v.isolated_cap_per_um(rule.width_on(layer_v))) / 2.0

    states: dict[int, _SubtreeState] = {}
    for node in tree.postorder():
        if node.is_leaf:
            cap = node.sink_pin.cap if node.sink_pin is not None else 0.0
            states[node.node_id] = _SubtreeState(delay=0.0, cap=cap)
            continue
        if len(node.children) == 1:
            # Degenerate unary node (can appear after buffer insertion
            # re-embedding); colocate with its child.
            child = tree.node(node.children[0])
            node.location = child.location
            states[node.node_id] = states[child.node_id]
            continue
        if len(node.children) != 2:
            raise ValueError(
                f"zero-skew embedding requires a binary topology; node "
                f"{node.node_id} has {len(node.children)} children")

        ch1 = tree.node(node.children[0])
        ch2 = tree.node(node.children[1])
        s1, s2 = states[ch1.node_id], states[ch2.node_id]
        length = ch1.location.manhattan_to(ch2.location)

        if length <= 0.0:
            node.location = ch1.location
            x = 0.0
            slower_first = s1.delay >= s2.delay
        else:
            x = ((r * c * length * length / 2.0 + r * s2.cap * length
                  + (s2.delay - s1.delay))
                 / (r * (c * length + s1.cap + s2.cap)))
            slower_first = x <= 0.0
            x = min(max(x, 0.0), length)
            node.location = _point_along_route(ch1.location, ch2.location, x)

        d1 = s1.delay + _wire_delay(r, c, x, s1.cap)
        d2 = s2.delay + _wire_delay(r, c, length - x, s2.cap)
        snake = 0.0
        if abs(d1 - d2) > 1e-9:
            # Snake the faster branch until it matches the slower one.
            if d1 < d2:
                base = x
                gap_len = _snake_length(r, c, d2 - s1.delay, s1.cap) - base
                ch1.snake = max(0.0, gap_len)
                snake = ch1.snake
                d1 = s1.delay + _wire_delay(r, c, base + ch1.snake, s1.cap)
            else:
                base = length - x
                gap_len = _snake_length(r, c, d1 - s2.delay, s2.cap) - base
                ch2.snake = max(0.0, gap_len)
                snake = ch2.snake
                d2 = s2.delay + _wire_delay(r, c, base + ch2.snake, s2.cap)

        merged_delay = max(d1, d2)
        merged_cap = s1.cap + s2.cap + c * (length + snake)
        states[node.node_id] = _SubtreeState(delay=merged_delay, cap=merged_cap)
        del slower_first  # direction is fully captured by which snake was set

    tree.validate()
