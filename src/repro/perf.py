"""Per-phase wall-time accounting.

The flow and the optimizer are instrumented with coarse named phases
(``extract``, ``refine``, ``analyze``, ``plan`` ...).  Timing is off by
default and costs one ``None`` check per phase entry; :func:`enable`
installs a module-level :class:`PhaseTimer` that every ``with
perf.phase(...)`` block then reports into.  The CLI exposes this as
``python -m repro --profile ...`` and the benchmark suite as
``pytest benchmarks --profile-phases``.

Phases nest naturally (``optimize`` encloses ``extract`` + ``analyze``
+ ...), so the report is a breakdown, not a partition: inner phases are
also counted inside their enclosing phase's total.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class PhaseTimer:
    """Accumulates wall time and call counts per named phase."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` of wall time to ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def reset(self) -> None:
        """Drop all accumulated phases."""
        self.totals.clear()
        self.counts.clear()

    def merge(self, other: "PhaseTimer | dict") -> None:
        """Fold another timer (or an :meth:`as_dict` snapshot) into this one.

        This is how per-job timings measured inside worker processes
        stream back into the parent's report.
        """
        if isinstance(other, PhaseTimer):
            for name, seconds in other.totals.items():
                self.totals[name] = self.totals.get(name, 0.0) + seconds
                self.counts[name] = (self.counts.get(name, 0)
                                     + other.counts.get(name, 0))
            return
        for name, entry in other.items():
            self.totals[name] = self.totals.get(name, 0.0) + entry["seconds"]
            self.counts[name] = self.counts.get(name, 0) + entry["calls"]

    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{phase: {seconds, calls}}``."""
        return {name: {"seconds": self.totals[name],
                       "calls": self.counts[name]}
                for name in sorted(self.totals,
                                   key=self.totals.get, reverse=True)}

    def report(self, title: str = "phase timings") -> str:
        """Aligned text table, most expensive phase first."""
        lines = [title, "-" * len(title)]
        if not self.totals:
            lines.append("(no phases recorded)")
            return "\n".join(lines)
        width = max(len(name) for name in self.totals)
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(f"{name:<{width}}  {self.totals[name]:>9.3f} s"
                         f"  x{self.counts[name]}")
        return "\n".join(lines)

    def write_json(self, path) -> None:
        """Write the :meth:`as_dict` snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2)
            fh.write("\n")


_TIMER: Optional[PhaseTimer] = None


def enable() -> PhaseTimer:
    """Install (or return the already-installed) global timer."""
    global _TIMER
    if _TIMER is None:
        _TIMER = PhaseTimer()
    return _TIMER


def disable() -> None:
    """Remove the global timer; ``phase`` blocks become no-ops again."""
    global _TIMER
    _TIMER = None


def active() -> Optional[PhaseTimer]:
    """The installed global timer, or None when profiling is off."""
    return _TIMER


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time the enclosed block globally when profiling is enabled."""
    if _TIMER is None:  # static: ok[C003] profiling toggle read; phase timings are metadata, never artifact content
        yield
    else:
        with _TIMER.phase(name):  # static: ok[C003] profiling toggle read; phase timings are metadata, never artifact content
            yield


@contextmanager
def capture() -> Iterator[PhaseTimer]:
    """Collect the enclosed block's phases into a fresh, yielded timer.

    Any enclosing global timer still sees the phases: the captured
    timer is merged into it on exit.  This is how the flow runner
    attributes phases to individual jobs without losing them from a
    ``--profile`` session total.
    """
    global _TIMER
    outer = _TIMER
    inner = PhaseTimer()
    _TIMER = inner  # static: ok[D004] process-local profiling slot, restored in the finally below
    try:
        yield inner
    finally:
        _TIMER = outer  # static: ok[D004] restores the outer timer; profiling state never crosses processes
        if outer is not None:
            outer.merge(inner)
