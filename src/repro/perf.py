"""Deprecated per-phase timing shim over :mod:`repro.obs`.

This module used to own a flat, module-global wall-time accumulator.
The structured observability layer (:mod:`repro.obs`) replaced it:
``perf.phase(name)`` is now exactly ``obs.span(name)``, and the timer
objects handed out by :func:`enable` / :func:`capture` are read views
that aggregate the tracer's span records into the old
``{phase: {seconds, calls}}`` shape.  All historic call sites keep
working; new code should use :mod:`repro.obs` directly —
:func:`enable` and :func:`capture` emit a :class:`DeprecationWarning`
saying so.

Semantics preserved from the old module:

* phases nest and the report is a breakdown, not a partition (inner
  phases also count inside their enclosing phase's total);
* ``capture`` runs a block under a fresh collector and the enclosing
  session still sees the phases afterwards.

Semantics deliberately *fixed*: the old ``capture`` folded totals into
the outer timer by flat name-keyed merge, so a cell that executed
in-process on a cache fallback could be counted twice.  The shim
re-roots the captured *span records* instead — each span has one
identity and is adopted at most once, so totals cannot double-count.
"""

from __future__ import annotations

import json
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import obs


@dataclass
class PhaseTimer:
    """Accumulates wall time and call counts per named phase.

    Kept for back-compat (snapshot maths, ``merge`` of ``as_dict``
    payloads); live timing now flows through :mod:`repro.obs` spans.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` of wall time to ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def reset(self) -> None:
        """Drop all accumulated phases."""
        self.totals.clear()
        self.counts.clear()

    def merge(self, other: "PhaseTimer | dict") -> None:
        """Fold another timer (or an :meth:`as_dict` snapshot) into this one."""
        if isinstance(other, PhaseTimer):
            for name, seconds in other.totals.items():
                self.totals[name] = self.totals.get(name, 0.0) + seconds
                self.counts[name] = (self.counts.get(name, 0)
                                     + other.counts.get(name, 0))
            return
        for name, entry in other.items():
            self.totals[name] = self.totals.get(name, 0.0) + entry["seconds"]
            self.counts[name] = self.counts.get(name, 0) + int(entry["calls"])

    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{phase: {seconds, calls}}``."""
        return {name: {"seconds": self.totals[name],
                       "calls": self.counts[name]}
                for name in sorted(self.totals,
                                   key=self.totals.get, reverse=True)}

    def report(self, title: str = "phase timings") -> str:
        """Aligned text table, most expensive phase first."""
        lines = [title, "-" * len(title)]
        if not self.totals:
            lines.append("(no phases recorded)")
            return "\n".join(lines)
        width = max(len(name) for name in self.totals)
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(f"{name:<{width}}  {self.totals[name]:>9.3f} s"
                         f"  x{self.counts[name]}")
        return "\n".join(lines)

    def write_json(self, path) -> None:
        """Write the :meth:`as_dict` snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2)
            fh.write("\n")


class SpanPhaseView:
    """A :class:`PhaseTimer`-shaped read view over an obs tracer.

    ``totals``/``counts``/``as_dict``/``report`` aggregate the
    tracer's span records on access; ``merge``/``add`` accept legacy
    snapshots into a side accumulator that is combined in.
    """

    def __init__(self, tracer: obs.Tracer) -> None:
        self.tracer = tracer
        self._extra = PhaseTimer()

    def _combined(self) -> PhaseTimer:
        timer = PhaseTimer()
        timer.merge(self.tracer.phase_totals())
        timer.merge(self._extra)
        return timer

    @property
    def totals(self) -> dict[str, float]:
        return self._combined().totals

    @property
    def counts(self) -> dict[str, int]:
        return self._combined().counts

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to ``name`` in the legacy side accumulator."""
        self._extra.add(name, seconds)

    def merge(self, other: "PhaseTimer | SpanPhaseView | dict") -> None:
        """Fold a legacy timer/snapshot into the side accumulator."""
        if isinstance(other, SpanPhaseView):
            other = other._combined()
        self._extra.merge(other)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block as a span on the wrapped tracer."""
        with self.tracer.span(name):
            yield

    def reset(self) -> None:
        """Drop everything recorded so far (spans included)."""
        self.tracer.records.clear()
        self._extra.reset()

    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{phase: {seconds, calls}}``."""
        return self._combined().as_dict()

    def report(self, title: str = "phase timings") -> str:
        """Aligned text table, most expensive phase first."""
        return self._combined().report(title)

    def write_json(self, path) -> None:
        """Write the :meth:`as_dict` snapshot to ``path``."""
        self._combined().write_json(path)


_VIEW: Optional[SpanPhaseView] = None


def _view_for(tracer: obs.Tracer) -> SpanPhaseView:
    global _VIEW
    if _VIEW is None or _VIEW.tracer is not tracer:
        _VIEW = SpanPhaseView(tracer)  # static: ok[D004] process-local profiling view over the obs tracer slot
    return _VIEW


def enable() -> SpanPhaseView:
    """Deprecated: install the obs tracer; return a timer-shaped view."""
    warnings.warn("repro.perf.enable() is deprecated; use "
                  "repro.obs.enable() and the span/metric API instead",
                  DeprecationWarning, stacklevel=2)
    return _view_for(obs.enable())


def disable() -> None:
    """Remove the tracer; ``phase`` blocks become no-ops again."""
    global _VIEW
    obs.disable()
    _VIEW = None  # static: ok[D004] process-local profiling view cleared with the tracer


def active() -> Optional[SpanPhaseView]:
    """The timer view over the installed tracer, or None when off."""
    tracer = obs.active()
    if tracer is None:
        return None
    return _view_for(tracer)


def phase(name: str):
    """Time the enclosed block as an :func:`repro.obs.span`."""
    return obs.span(name)


@contextmanager
def capture() -> Iterator[SpanPhaseView]:
    """Deprecated: collect the block's phases into a fresh, yielded view.

    An enclosing tracer still sees the phases — the captured span
    records are re-rooted under the current span on exit (identity
    adoption, so nothing is ever counted twice; see
    :func:`repro.obs.capture`).
    """
    warnings.warn("repro.perf.capture() is deprecated; use "
                  "repro.obs.capture() instead",
                  DeprecationWarning, stacklevel=3)
    with obs.capture("perf.capture") as tracer:
        yield SpanPhaseView(tracer)
