"""Command-line interface.

Subcommands::

    python -m repro suite                       # benchmark statistics
    python -m repro run --design ckt256 --policy smart
    python -m repro compare --design ckt256 [--with-ml]
    python -m repro sweep --design ckt128 --slacks 0.6,0.3,0.15
    python -m repro lint --design ckt256 --policy smart [--json]

``--design`` accepts a built-in benchmark name or a path to a design
JSON file (see :mod:`repro.io`).  Robustness budgets default to the
all-NDR-reference peg; ``--slack`` controls its tightness.

``--profile`` (before the subcommand) prints a per-phase wall-time
breakdown of the run — see :mod:`repro.perf`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import perf
from repro.bench import benchmark_suite, generate_design, spec_by_name
from repro.core import (NdrClassifierGuide, Policy, run_flow,
                        targets_from_reference)
from repro.io import load_design, save_rule_assignment, write_wire_report
from repro.viz import save_clock_svg
from repro.reporting import Table
from repro.tech import default_technology


def _load_design(name_or_path: str):
    if Path(name_or_path).suffix == ".json":
        return load_design(name_or_path)
    return generate_design(spec_by_name(name_or_path))


def _targets(design_factory, tech, slack: float):
    reference = run_flow(design_factory(), tech, policy=Policy.ALL_NDR)
    return targets_from_reference(reference.analyses, tech, slack=slack)


def _flow_row(table: Table, flow) -> None:
    a = flow.analyses
    hist = flow.rule_histogram
    upgraded = sum(hist.values()) - hist.get("W1S1", 0)
    table.add_row(flow.policy.value, flow.clock_power, a.power.wire_cap,
                  a.timing.skew, a.crosstalk.worst_delta, a.mc.skew_3sigma,
                  int(a.em.num_violations), upgraded,
                  "yes" if flow.feasible else "NO")


def _policy_table(title: str) -> Table:
    return Table(title, ["policy", "P (uW)", "wire fF", "skew ps", "dd ps",
                         "3sig ps", "EM", "upgraded", "feasible"])


def cmd_suite(_args) -> int:
    """Print default-rule statistics for the whole benchmark suite."""
    from repro.core.flow import build_physical_design
    from repro.timing import analyze_clock_timing

    tech = default_technology()
    table = Table("Benchmark suite (default-rule routing)",
                  ["design", "sinks", "die um", "aggr", "clk WL um",
                   "latency ps", "skew ps"])
    for spec in benchmark_suite():
        phys = build_physical_design(generate_design(spec), tech)
        timing = analyze_clock_timing(phys.extraction.network, tech)
        table.add_row(spec.name, spec.n_sinks, spec.die_edge,
                      spec.n_aggressors, phys.routing.clock_wirelength(),
                      timing.latency, timing.skew)
    print(table.render())
    return 0


def cmd_run(args) -> int:
    """Run one policy on one design; optional rules/report/SVG outputs."""
    tech = default_technology()
    policy = Policy(args.policy)
    targets = _targets(lambda: _load_design(args.design), tech, args.slack)
    kwargs = {}
    if policy == Policy.SMART_ML:
        guide = NdrClassifierGuide(seed=0)
        guide.fit_designs([generate_design(spec_by_name(n))
                           for n in ("ckt64", "ckt128")], tech)
        kwargs["guide"] = guide
    flow = run_flow(_load_design(args.design), tech, policy=policy,
                    targets=targets, **kwargs)
    table = _policy_table(f"{args.design} under {policy.value}")
    _flow_row(table, flow)
    print(table.render())
    if args.verbose:
        from repro.reporting import analysis_summary

        print()
        print(analysis_summary(flow.analyses, flow.targets,
                               title=f"{args.design} / {policy.value}"))
    if args.save_rules:
        n = save_rule_assignment(flow.physical.routing, args.save_rules,
                                 design_name=flow.design_name)
        print(f"saved {n} non-default rules to {args.save_rules}")
    if args.wire_report:
        n = write_wire_report(flow.physical.extraction, args.wire_report)
        print(f"wrote {n} wires to {args.wire_report}")
    if args.svg:
        save_clock_svg(flow.physical.tree, flow.physical.routing, args.svg,
                       title=f"{flow.design_name} / {policy.value}",
                       blockages=flow.physical.design.blockages)
        print(f"rendered clock tree to {args.svg}")
    return 0 if flow.feasible else 1


def cmd_compare(args) -> int:
    """Compare NO/ALL/SMART (and optionally ML) on one design."""
    tech = default_technology()
    targets = _targets(lambda: _load_design(args.design), tech, args.slack)
    policies = [Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART]
    kwargs_of = {policy: {} for policy in policies}
    if args.with_ml:
        guide = NdrClassifierGuide(seed=0)
        guide.fit_designs([generate_design(spec_by_name(n))
                           for n in ("ckt64", "ckt128")], tech)
        policies.append(Policy.SMART_ML)
        kwargs_of[Policy.SMART_ML] = {"guide": guide}
    table = _policy_table(f"{args.design}: policy comparison "
                          f"(slack {args.slack:.2f})")
    flows = {}
    for policy in policies:
        flow = run_flow(_load_design(args.design), tech, policy=policy,
                        targets=targets, **kwargs_of[policy])
        flows[policy] = flow
        _flow_row(table, flow)
    print(table.render())
    p_all = flows[Policy.ALL_NDR].clock_power
    p_smart = flows[Policy.SMART].clock_power
    print(f"smart saves {100 * (p_all - p_smart) / p_all:.1f}% vs all-ndr")
    return 0


def cmd_sweep(args) -> int:
    """Sweep the budget slack for the smart policy."""
    tech = default_technology()
    slacks = [float(s) for s in args.slacks.split(",")]
    table = Table(f"{args.design}: budget-slack sweep",
                  ["slack", "P (uW)", "upgraded %", "feasible"])
    for slack in sorted(slacks, reverse=True):
        targets = _targets(lambda: _load_design(args.design), tech, slack)
        flow = run_flow(_load_design(args.design), tech,
                        policy=Policy.SMART, targets=targets)
        hist = flow.rule_histogram
        total = sum(hist.values())
        table.add_row(slack, flow.clock_power,
                      100.0 * (total - hist.get("W1S1", 0)) / total,
                      "yes" if flow.feasible else "NO")
    print(table.render())
    return 0


def cmd_lint(args) -> int:
    """Run the static verifier on a flow; exit 1 on any ERROR diagnostic.

    Unlike ``run``/``compare``, budgets come straight from the
    period-derived spec (no all-NDR reference run) — the linter checks
    structural coherence, not quality-of-result, so the cheap targets
    are enough to drive the flow under inspection.
    """
    from repro.core.targets import RobustnessTargets
    from repro.verify import registered_checks, run_checks, VerifyContext

    if args.list_checks:
        for check in registered_checks():
            print(f"{check.rule:22s} [{check.kind:6s}] {check.doc}")
        return 0
    if not args.design:
        print("lint: --design is required (or use --list-checks)",
              file=sys.stderr)
        return 2
    tech = default_technology()
    design = _load_design(args.design)
    targets = RobustnessTargets.for_period(design.clock_period,
                                           tech.max_slew)
    flow = run_flow(design, tech, policy=Policy(args.policy),
                    targets=targets)
    kinds = None
    if args.checks != "all":
        kinds = [k.strip() for k in args.checks.split(",") if k.strip()]
    report = run_checks(VerifyContext.from_flow(flow), kinds=kinds)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 1 if report.has_errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Smart non-default clock routing flows")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wall-time breakdown at exit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="print benchmark suite statistics")

    p_run = sub.add_parser("run", help="run one policy on one design")
    p_run.add_argument("--design", required=True,
                       help="benchmark name or design JSON path")
    p_run.add_argument("--policy", default="smart",
                       choices=[p.value for p in Policy])
    p_run.add_argument("--slack", type=float, default=0.15,
                       help="budget slack over the all-NDR reference")
    p_run.add_argument("--save-rules", default="",
                       help="write the rule assignment to this JSON path")
    p_run.add_argument("--wire-report", default="",
                       help="write a per-wire report to this path")
    p_run.add_argument("--svg", default="",
                       help="render the routed clock tree to this SVG path")
    p_run.add_argument("--verbose", action="store_true",
                       help="print the full signoff-style summary")

    p_cmp = sub.add_parser("compare", help="compare policies on one design")
    p_cmp.add_argument("--design", required=True)
    p_cmp.add_argument("--slack", type=float, default=0.15)
    p_cmp.add_argument("--with-ml", action="store_true",
                       help="include the ML-guided policy (trains inline)")

    p_sweep = sub.add_parser("sweep", help="sweep budget slack (smart policy)")
    p_sweep.add_argument("--design", required=True)
    p_sweep.add_argument("--slacks", default="0.6,0.3,0.15",
                         help="comma-separated slack values")

    p_lint = sub.add_parser(
        "lint", help="run the static DRC/ERC + engine-oracle verifier")
    p_lint.add_argument("--design", default="",
                        help="benchmark name or design JSON path")
    p_lint.add_argument("--policy", default="smart",
                        choices=[p.value for p in Policy])
    p_lint.add_argument("--checks", default="all",
                        help="comma-separated check kinds (drc,oracle) "
                             "or 'all'")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    p_lint.add_argument("--list-checks", action="store_true",
                        help="list registered checks and exit")
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "suite": cmd_suite,
        "run": cmd_run,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "lint": cmd_lint,
    }[args.command]
    if not args.profile:
        return handler(args)
    timer = perf.enable()
    try:
        return handler(args)
    finally:
        print()
        print(timer.report(f"phase timings ({args.command})"))
        perf.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
