"""Command-line interface.

Subcommands::

    python -m repro suite [--designs SEL,..] [--jobs N] [--json]
    python -m repro run --design ckt256 --policy smart [--json]
    python -m repro compare --design ckt256 [--with-ml] [--jobs N] [--json]
    python -m repro sweep --design ckt128 --slacks 0.6,0.3,0.15 [--jobs N]
    python -m repro designs list [--family F] [--json]  # the corpus registry
    python -m repro designs show ckt256 [--json]
    python -m repro designs gen soc_h256 [--out d.json] [--deflite d.dl.json]
    python -m repro designs import floorplan.json [--out d.json]
    python -m repro designs validate ckt64 family:gated floorplan.json
    python -m repro lint --design ckt256 --policy smart [--json]
    python -m repro lint --static [src/repro]          # whole-program static codes
    python -m repro lint --static --codes 'Q*' --json  # one rule family only
    python -m repro trace trace.jsonl [--top N]        # render a trace file
    python -m repro serve [--port P] [--workers N]     # the flow-service daemon
    python -m repro store stats [--json]               # artifact cache counters
    python -m repro store gc [--max-bytes N]           # LRU-evict to a budget

``run``/``compare``/``sweep``/``lint`` parse their flags into the same
typed request objects the service accepts (:mod:`repro.api`), so the
request dataclasses are the single source of truth for defaults.

``--design`` accepts a corpus design name or a path to a design JSON
file (see :mod:`repro.io`); ``suite --designs`` additionally accepts
corpus selectors — globs (``'ckt*'``) and families
(``family:hierarchical``, ``family:*``) from :mod:`repro.designs`.
Robustness budgets default to the all-NDR-reference peg; ``--slack``
controls its tightness.

Every command schedules its flows through the
:class:`~repro.runner.FlowRunner`: the all-NDR reference is a cached
upstream job computed once per (design, tech), the default-rule build
is shared across policies and slacks, and completed cells are
content-addressed in the on-disk artifact store, so repeat invocations
are warm.  The programmatic equivalents live in :mod:`repro.api`.

Common options (every subcommand): ``--jobs N`` fans the cells out
over worker processes; ``--no-cache`` disables the artifact store;
``--trace [PATH]`` records the run as an :mod:`repro.obs` trace —
worker span trees are re-rooted into the parent's — prints the phase
breakdown at exit, and writes trace JSONL to PATH (bare ``--trace``
content-addresses the file next to the artifact store).  The old
``--profile`` spelling is a deprecated alias for bare ``--trace``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path

from repro import obs
from repro.api import (CellReport, CompareRequest, FlowRequest, LintRequest,
                       SweepRequest, compare, fit_guide, request_field_default,
                       sweep)
from repro.designs import benchmark_suite, generate_design, spec_by_name
from repro.core import Policy
from repro.io import save_rule_assignment, write_wire_report
from repro.runner import FlowRunner
from repro.viz import save_clock_svg
from repro.reporting import Table
from repro.tech import default_technology


def _runner(args, guide=None) -> FlowRunner:
    """The command's flow runner (store per ``--no-cache``)."""
    return FlowRunner(tech=default_technology(),
                      store=not getattr(args, "no_cache", False),
                      jobs=getattr(args, "jobs", 1), guide=guide)


def _result_dict(result) -> dict:
    """One JSON row per cell (mirrors ``repro lint --json``'s spirit)."""
    return {
        "design": result.job.design,
        "policy": result.job.policy.value,
        "slack": result.job.slack,
        "feasible": result.feasible,
        "cached": result.cached,
        "runtime_s": result.runtime,
        "summary": result.summary,
        "rule_histogram": result.rule_histogram,
    }


def _report_row(table: Table, cell: CellReport) -> None:
    s = cell.summary
    table.add_row(cell.policy, s["power_uw"], s["wire_cap_ff"],
                  s["skew_ps"], s["worst_delta_ps"], s["skew_3sigma_ps"],
                  int(s["em_violations"]), cell.upgraded_wires,
                  "yes" if cell.feasible else "NO")


def _policy_table(title: str) -> Table:
    return Table(title, ["policy", "P (uW)", "wire fF", "skew ps", "dd ps",
                         "3sig ps", "EM", "upgraded", "feasible"])


def cmd_suite(args) -> int:
    """Print default-rule statistics for the suite (or ``--designs``)."""
    if getattr(args, "designs", ""):
        from repro.runner import expand_design_refs

        names = expand_design_refs(tuple(
            s.strip() for s in args.designs.split(",") if s.strip()))
    else:
        names = tuple(spec.name for spec in benchmark_suite())
    rows = _suite_rows(names, args)
    columns = ["design", "sinks", "die um", "aggr", "clk WL um",
               "latency ps", "skew ps"]
    if args.json:
        print(json.dumps([dict(zip(columns, row)) for row in rows],
                         indent=2, sort_keys=True))
        return 0
    table = Table("Benchmark suite (default-rule routing)", columns)
    for row in rows:
        table.add_row(*row)
    print(table.render())
    return 0


def _suite_pool_init() -> None:
    """Per-worker initializer for the suite row pool.

    A forked worker inherits the parent's installed obs tracer; drop
    it so suite rows never write spans into the fork's copy of the
    parent's buffers (same contract as the flow runner's pool).
    """
    from repro import obs

    obs.disable()


def _suite_row(name: str, store_root) -> tuple:
    """One suite table row (runs in a worker when ``--jobs`` > 1)."""
    from repro.core.flow import build_physical_design
    from repro.io import ArtifactStore
    from repro.timing import analyze_clock_timing

    spec = spec_by_name(name)
    tech = default_technology()
    store = ArtifactStore(store_root) if store_root else None
    phys = build_physical_design(generate_design(spec), tech, store=store)
    timing = analyze_clock_timing(phys.extraction.network, tech)
    return (spec.name, spec.n_sinks, spec.die_edge, spec.n_aggressors,
            phys.routing.clock_wirelength(), timing.latency, timing.skew)


def _suite_rows(names, args) -> list[tuple]:
    from repro.io import default_cache_dir

    store_root = None if args.no_cache else str(default_cache_dir())
    if args.jobs <= 1:
        return [_suite_row(name, store_root) for name in names]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(args.jobs, len(names)),
                             initializer=_suite_pool_init) as pool:
        return list(pool.map(_suite_row, names,
                             [store_root] * len(names)))


def cmd_run(args) -> int:
    """Run one policy on one design; optional rules/report/SVG outputs."""
    request = FlowRequest(design=args.design, policy=args.policy,
                          slack=args.slack)
    policy = Policy(request.policy)
    guide = fit_guide() if policy == Policy.SMART_ML else None
    runner = _runner(args, guide=guide)
    result = runner.run_job(request.job_spec(), return_flow=True)
    flow = result.flow
    if args.json:
        print(json.dumps(_result_dict(result), indent=2, sort_keys=True))
    else:
        table = _policy_table(f"{args.design} under {policy.value}")
        s = result.summary
        hist = result.rule_histogram
        table.add_row(policy.value, s["power_uw"], s["wire_cap_ff"],
                      s["skew_ps"], s["worst_delta_ps"], s["skew_3sigma_ps"],
                      int(s["em_violations"]),
                      sum(hist.values()) - hist.get("W1S1", 0),
                      "yes" if result.feasible else "NO")
        print(table.render())
    if args.verbose and not args.json:
        from repro.reporting import analysis_summary

        print()
        print(analysis_summary(flow.analyses, flow.targets,
                               title=f"{args.design} / {policy.value}"))
    if args.save_rules:
        n = save_rule_assignment(flow.physical.routing, args.save_rules,
                                 design_name=flow.design_name)
        if not args.json:
            print(f"saved {n} non-default rules to {args.save_rules}")
    if args.wire_report:
        n = write_wire_report(flow.physical.extraction, args.wire_report)
        if not args.json:
            print(f"wrote {n} wires to {args.wire_report}")
    if args.svg:
        save_clock_svg(flow.physical.tree, flow.physical.routing, args.svg,
                       title=f"{flow.design_name} / {policy.value}",
                       blockages=flow.physical.design.blockages)
        if not args.json:
            print(f"rendered clock tree to {args.svg}")
    return 0 if result.feasible else 1


def cmd_compare(args) -> int:
    """Compare NO/ALL/SMART (and optionally ML) on one design."""
    request = CompareRequest(design=args.design, slack=args.slack,
                             with_ml=args.with_ml)
    report = compare(request, jobs=args.jobs, store=not args.no_cache)
    if args.json:
        print(json.dumps({
            "design": report.design,
            "slack": report.slack,
            "smart_saving_pct": report.smart_saving_pct,
            "rows": [dataclasses.asdict(cell) for cell in report.cells],
        }, indent=2, sort_keys=True))
        return 0
    table = _policy_table(f"{args.design}: policy comparison "
                          f"(slack {args.slack:.2f})")
    for cell in report.cells:
        _report_row(table, cell)
    print(table.render())
    print(f"smart saves {report.smart_saving_pct:.1f}% vs all-ndr")
    return 0


def cmd_sweep(args) -> int:
    """Sweep the budget slack for the smart policy.

    The all-NDR reference is computed once per design and every slack's
    budgets derive from it — a sweep costs one reference plus one smart
    flow per point, not one reference per point.
    """
    request = SweepRequest(design=args.design,
                           slacks=tuple(float(s)
                                        for s in args.slacks.split(",")))
    report = sweep(request, jobs=args.jobs, store=not args.no_cache)
    if args.json:
        print(json.dumps(dataclasses.asdict(report), indent=2,
                         sort_keys=True))
        return 0
    table = Table(f"{args.design}: budget-slack sweep",
                  ["slack", "P (uW)", "upgraded %", "feasible"])
    for point in report.points:
        table.add_row(point.slack, point.power_uw, point.upgraded_pct,
                      "yes" if point.feasible else "NO")
    print(table.render())
    return 0


def _designs_list(args) -> int:
    """List the corpus registry: every family and its designs."""
    from repro.designs import families, family, spec_fingerprint

    fams = (family(args.family),) if args.family else families()
    rows = [(spec.name, fam.name, spec.generator, spec.n_sinks,
             spec.die_edge, spec_fingerprint(spec)[:12])
            for fam in fams for spec in fam.specs]
    columns = ["design", "family", "generator", "sinks", "die um",
               "content key"]
    if args.json:
        print(json.dumps([dict(zip(columns, row)) for row in rows],
                         indent=2, sort_keys=True))
        return 0
    for fam in fams:
        print(f"{fam.name}: {fam.description}")
    print()
    table = Table("Design corpus", columns)
    for row in rows:
        table.add_row(*row)
    print(table.render())
    return 0


def _designs_show(args) -> int:
    """Show one registered spec: fields, family, content fingerprint."""
    from repro.designs import family_of, spec_by_name, spec_fingerprint, \
        spec_to_dict

    spec = spec_by_name(args.name)
    payload = {"spec": spec_to_dict(spec),
               "family": family_of(spec.name),
               "fingerprint": spec_fingerprint(spec)}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{spec.name}  (family {payload['family']})")
    print(f"  fingerprint: {payload['fingerprint']}")
    for key, value in sorted(payload["spec"].items()):
        print(f"  {key}: {value}")
    return 0


def _designs_gen(args) -> int:
    """Generate a corpus design; optionally persist it."""
    from repro.designs import save_deflite
    from repro.io import design_fingerprint, save_design

    design = generate_design(spec_by_name(args.name))
    info = {"design": design.name,
            "sinks": len(design.clock_sinks),
            "aggressors": len(design.signal_nets),
            "blockages": len(design.blockages),
            "fingerprint": design_fingerprint(design)}
    if args.out:
        save_design(design, args.out)
        info["out"] = args.out
    if args.deflite:
        save_deflite(design, args.deflite)
        info["deflite"] = args.deflite
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
    else:
        print(f"{design.name}: {info['sinks']} sinks, "
              f"{info['aggressors']} aggressors, "
              f"{info['blockages']} blockages")
        print(f"  fingerprint: {info['fingerprint']}")
        for key in ("out", "deflite"):
            if key in info:
                print(f"  wrote {key}: {info[key]}")
    return 0


def _designs_import(args) -> int:
    """Validate and build a DEF-lite file; report, optionally persist."""
    from repro.designs import load_deflite, deflite_to_design, \
        validate_deflite
    from repro.io import save_design

    data = load_deflite(args.file)
    report = validate_deflite(data, path=Path(args.file))
    if report.has_errors or args.verbose:
        print(report.render() if not args.json else report.to_json())
    if report.has_errors:
        return 1
    design = deflite_to_design(data, name=args.name or None)
    info = {"design": design.name,
            "sinks": len(design.clock_sinks),
            "aggressors": len(design.signal_nets),
            "blockages": len(design.blockages)}
    if args.out:
        save_design(design, args.out)
        info["out"] = args.out
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
    else:
        print(f"imported {design.name}: {info['sinks']} sinks, "
              f"{info['aggressors']} aggressors, "
              f"{info['blockages']} blockages"
              + (f" -> {args.out}" if args.out else ""))
    return 0


def _designs_validate(args) -> int:
    """Validate corpus refs: DEF-lite checks for files, build for names."""
    from repro.designs import validate_deflite
    from repro.runner import expand_design_refs

    failures = 0
    for ref in expand_design_refs(tuple(args.refs)):
        if ref.endswith(".json"):
            report = validate_deflite(ref)
            status = "ERROR" if report.has_errors else "ok"
            if report.has_errors or args.verbose:
                print(report.render())
            print(f"{ref}: {status}")
            failures += int(report.has_errors)
            continue
        try:
            design = generate_design(spec_by_name(ref))
        except Exception as exc:  # noqa: BLE001 - reported per ref
            print(f"{ref}: ERROR {type(exc).__name__}: {exc}")
            failures += 1
        else:
            print(f"{ref}: ok ({len(design.clock_sinks)} sinks)")
    return 1 if failures else 0


def cmd_designs(args) -> int:
    """Dispatch the ``repro designs`` corpus subcommands."""
    handler = {
        "list": _designs_list,
        "show": _designs_show,
        "gen": _designs_gen,
        "import": _designs_import,
        "validate": _designs_validate,
    }[args.designs_command]
    return handler(args)


def cmd_lint(args) -> int:
    """Run the static verifier on a flow; exit 1 on any ERROR diagnostic.

    Unlike ``run``/``compare``, budgets come straight from the
    period-derived spec (no all-NDR reference run) — the linter checks
    structural coherence, not quality-of-result, so the cheap targets
    are enough to drive the flow under inspection.

    ``--static`` analyzes the *source* instead of a flow: the
    whole-program determinism / cache-soundness checker
    (:mod:`repro.analysis`) over the installed package or a package
    root given as a positional path (``repro lint --static src/repro``).
    """
    from repro.api import lint
    from repro.verify import registered_checks

    if args.list_checks:
        import repro.analysis  # registers the static D/C checks

        for check in registered_checks():
            print(f"{check.rule:22s} [{check.kind:6s}] {check.doc}")
        return 0
    if args.static:
        codes = tuple(c.strip() for c in args.codes.split(",") if c.strip())
        try:
            report = lint(LintRequest(static=True,
                                      paths=tuple(args.paths or ()),
                                      codes=codes))
        except KeyError as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        if args.codes:
            print("lint: --codes requires --static", file=sys.stderr)
            return 2
        if not args.design:
            print("lint: --design is required (or use --list-checks/"
                  "--static)", file=sys.stderr)
            return 2
        kinds = ()
        if args.checks != "all":
            kinds = tuple(k.strip() for k in args.checks.split(",")
                          if k.strip())
        report = lint(LintRequest(design=args.design, policy=args.policy,
                                  kinds=kinds))
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 1 if report.has_errors else 0


def cmd_trace(args) -> int:
    """Render a trace JSONL file; exit 2 on a malformed trace."""
    from repro.api import trace_report
    from repro.obs.export import TraceSchemaError, load_trace

    try:
        if args.json:
            trace = load_trace(args.file)
            print(json.dumps({"meta": trace.meta,
                              "phase_totals": trace.phase_totals(),
                              "metrics": trace.metrics},
                             indent=2, sort_keys=True))
        else:
            print(trace_report(args.file, top=args.top))
    except (OSError, TraceSchemaError) as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    return 0


async def _serve_main(config) -> int:
    """Boot the daemon, wire signals, serve until shutdown."""
    import asyncio
    import signal

    from repro.serve import ServeDaemon

    daemon = ServeDaemon(config)
    await daemon.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, daemon.request_shutdown)
    print(f"repro serve: listening on http://{config.host}:{daemon.port} "
          f"({config.workers} workers, store {daemon.store.root})",
          file=sys.stderr)
    await daemon.run_until_shutdown()
    print("repro serve: shut down cleanly", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """Run the batching/dedup flow-service daemon (``docs/SERVICE.md``)."""
    import asyncio

    from repro.serve import ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        verify=bool(os.environ.get("REPRO_VERIFY_FLOWS")),
        store_root=args.store or None,
        max_store_bytes=args.max_store_bytes,
        warm=not args.no_warm)
    return asyncio.run(_serve_main(config))


def cmd_store(args) -> int:
    """Inspect or garbage-collect the shared artifact cache tier."""
    from repro.io import ArtifactStore, default_cache_max_bytes

    store = ArtifactStore(args.store or None)
    if args.store_command == "gc":
        max_bytes = (args.max_bytes if args.max_bytes is not None
                     else default_cache_max_bytes())
        if max_bytes is None:
            print("store gc: no budget (pass --max-bytes or set "
                  "$REPRO_CACHE_MAX_BYTES); reporting only",
                  file=sys.stderr)
        swept = store.gc(max_bytes=max_bytes)
        payload = {"root": str(store.root), **swept}
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"{store.root}: evicted {swept['evicted']} artifacts "
                  f"({swept['evicted_bytes']} bytes), "
                  f"{swept['kept_bytes']} bytes kept")
        return 0
    payload = {"root": str(store.root), **store.stats()}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"artifact store at {store.root}")
        for key, value in sorted(payload.items()):
            if key != "root":
                print(f"  {key}: {value}")
    return 0


def add_common_opts(p) -> None:
    """The options every subcommand shares.

    Defaults are ``SUPPRESS`` so a subcommand-level flag overrides the
    parser-wide ``set_defaults`` values without clobbering deprecated
    top-level spellings (``repro --no-cache compare ...`` still works).
    """
    p.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                   metavar="N",
                   help="worker processes for flow cells (default 1)")
    p.add_argument("--json", action="store_true", default=argparse.SUPPRESS,
                   help="emit the result as JSON")
    p.add_argument("--no-cache", action="store_true",
                   default=argparse.SUPPRESS,
                   help="disable the content-addressed artifact store")
    p.add_argument("--trace", nargs="?", const="", default=argparse.SUPPRESS,
                   metavar="PATH",
                   help="record an obs trace; print the phase breakdown and "
                        "write trace JSONL to PATH (bare --trace "
                        "content-addresses it next to the artifact store)")
    p.add_argument("--profile", action="store_true",
                   default=argparse.SUPPRESS, help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Smart non-default clock routing flows")
    parser.add_argument("--profile", action="store_true",
                        help="deprecated alias for bare --trace")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed artifact store")
    parser.set_defaults(jobs=1, json=False, trace=None)
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="print benchmark suite statistics")
    p_suite.add_argument("--designs", default="",
                         help="comma-separated corpus selectors (names, "
                              "globs, family:NAME); default: the Table-1 "
                              "suite")
    add_common_opts(p_suite)

    p_designs = sub.add_parser(
        "designs", help="inspect and build the design corpus")
    dsub = p_designs.add_subparsers(dest="designs_command", required=True)
    d_list = dsub.add_parser("list", help="list registered families/designs")
    d_list.add_argument("--family", default="",
                        help="restrict to one family")
    add_common_opts(d_list)
    d_show = dsub.add_parser("show", help="show one registered spec")
    d_show.add_argument("name", help="registered design name")
    add_common_opts(d_show)
    d_gen = dsub.add_parser("gen", help="generate a corpus design")
    d_gen.add_argument("name", help="registered design name")
    d_gen.add_argument("--out", default="",
                       help="write the design JSON to this path")
    d_gen.add_argument("--deflite", default="",
                       help="write a DEF-lite export to this path")
    add_common_opts(d_gen)
    d_imp = dsub.add_parser("import", help="validate + build a DEF-lite file")
    d_imp.add_argument("file", help="DEF-lite JSON path")
    d_imp.add_argument("--name", default="",
                       help="override the imported design name")
    d_imp.add_argument("--out", default="",
                       help="write the built design JSON to this path")
    d_imp.add_argument("--verbose", action="store_true",
                       help="print the validation report even when clean")
    add_common_opts(d_imp)
    d_val = dsub.add_parser(
        "validate", help="validate corpus refs (names, selectors, DEF-lite)")
    d_val.add_argument("refs", nargs="+",
                       help="design names, selectors, or DEF-lite paths")
    d_val.add_argument("--verbose", action="store_true",
                       help="print clean validation reports too")
    add_common_opts(d_val)

    p_run = sub.add_parser("run", help="run one policy on one design")
    p_run.add_argument("--design", required=True,
                       help="benchmark name or design JSON path")
    p_run.add_argument("--policy",
                       default=request_field_default(FlowRequest, "policy"),
                       choices=[p.value for p in Policy])
    p_run.add_argument("--slack", type=float,
                       default=request_field_default(FlowRequest, "slack"),
                       help="budget slack over the all-NDR reference")
    p_run.add_argument("--save-rules", default="",
                       help="write the rule assignment to this JSON path")
    p_run.add_argument("--wire-report", default="",
                       help="write a per-wire report to this path")
    p_run.add_argument("--svg", default="",
                       help="render the routed clock tree to this SVG path")
    p_run.add_argument("--verbose", action="store_true",
                       help="print the full signoff-style summary")
    add_common_opts(p_run)

    p_cmp = sub.add_parser("compare", help="compare policies on one design")
    p_cmp.add_argument("--design", required=True)
    p_cmp.add_argument("--slack", type=float,
                       default=request_field_default(CompareRequest, "slack"))
    p_cmp.add_argument("--with-ml", action="store_true",
                       help="include the ML-guided policy (trains inline)")
    add_common_opts(p_cmp)

    p_sweep = sub.add_parser("sweep", help="sweep budget slack (smart policy)")
    p_sweep.add_argument("--design", required=True)
    p_sweep.add_argument(
        "--slacks",
        default=",".join(str(s) for s in
                         request_field_default(SweepRequest, "slacks")),
        help="comma-separated slack values")
    add_common_opts(p_sweep)

    p_lint = sub.add_parser(
        "lint", help="run the static DRC/ERC + engine-oracle verifier")
    p_lint.add_argument("--design", default="",
                        help="benchmark name or design JSON path")
    p_lint.add_argument("--policy",
                        default=request_field_default(LintRequest, "policy"),
                        choices=[p.value for p in Policy])
    p_lint.add_argument("--checks", default="all",
                        help="comma-separated check kinds (drc,oracle) "
                             "or 'all'")
    p_lint.add_argument("--list-checks", action="store_true",
                        help="list registered checks and exit")
    p_lint.add_argument("--codes", default="",
                        help="with --static: comma-separated fnmatch "
                             "patterns over rule ids (e.g. 'Q*' for the "
                             "dimension family, 'Q*,U*' for all unit rules)")
    p_lint.add_argument("--static", action="store_true",
                        help="run the whole-program determinism / "
                             "cache-soundness analyzer instead of a flow")
    p_lint.add_argument("paths", nargs="*",
                        help="package root for --static "
                             "(default: the installed repro package)")
    add_common_opts(p_lint)

    p_trace = sub.add_parser(
        "trace", help="render a recorded trace JSONL file")
    p_trace.add_argument("file", help="trace JSONL path (from --trace)")
    p_trace.add_argument("--top", type=int, default=10,
                         help="critical-path depth (default 10)")
    add_common_opts(p_trace)

    p_serve = sub.add_parser(
        "serve", help="run the batching/dedup flow-service daemon")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="bind port; 0 picks an ephemeral one")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="persistent worker processes (default 2)")
    p_serve.add_argument("--store", default="",
                         help="artifact store root shared with workers "
                              "(default: the per-user cache)")
    p_serve.add_argument("--max-store-bytes", type=int, default=None,
                         metavar="N",
                         help="LRU disk budget for the store "
                              "(default: $REPRO_CACHE_MAX_BYTES)")
    p_serve.add_argument("--no-warm", action="store_true",
                         help="skip pre-spawning workers at startup")
    add_common_opts(p_serve)

    p_store = sub.add_parser(
        "store", help="inspect or GC the shared artifact cache")
    ssub = p_store.add_subparsers(dest="store_command", required=True)
    s_stats = ssub.add_parser("stats", help="print cache-tier counters")
    s_stats.add_argument("--store", default="",
                         help="store root (default: the per-user cache)")
    add_common_opts(s_stats)
    s_gc = ssub.add_parser("gc", help="LRU-evict disk entries to a budget")
    s_gc.add_argument("--store", default="",
                      help="store root (default: the per-user cache)")
    s_gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                      help="byte budget (default: $REPRO_CACHE_MAX_BYTES)")
    add_common_opts(s_gc)
    return parser


def _finish_trace(tracer: obs.Tracer, args) -> None:
    """Print the breakdown and write the trace file at CLI exit."""
    from repro.obs.export import export_jsonl
    from repro.obs.report import metrics_table, phase_breakdown

    print()
    print(phase_breakdown(tracer).render())
    if len(tracer.metrics):
        print()
        print(metrics_table(tracer).render())
    out = None
    if args.trace:
        out = export_jsonl(tracer, path=args.trace)
    elif not args.no_cache:
        from repro.io import default_cache_dir

        out = export_jsonl(tracer,
                           directory=Path(default_cache_dir()) / "traces")
    if out is not None:
        print(f"trace written to {out}", file=sys.stderr)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "suite": cmd_suite,
        "run": cmd_run,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "designs": cmd_designs,
        "lint": cmd_lint,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "store": cmd_store,
    }[args.command]
    if getattr(args, "profile", False):
        print("note: --profile is deprecated; use --trace [PATH]",
              file=sys.stderr)
        if args.trace is None:
            args.trace = ""
    if args.trace is None:
        return handler(args)
    tracer = obs.enable(f"repro.{args.command}")
    try:
        with obs.span(f"cli.{args.command}"):
            return handler(args)
    finally:
        _finish_trace(tracer, args)
        obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
