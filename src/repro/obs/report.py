"""Human-readable rendering of a trace: the ``repro trace`` views.

Three tables over one :class:`~repro.obs.export.TraceData` (or a live
:class:`~repro.obs.spans.Tracer`):

* **phase breakdown** — per span name: calls, total seconds, *self*
  seconds (total minus direct children — the partition the flat
  :mod:`repro.perf` report could never give), share of the trace;
* **per-cell timeline** — one row per ``runner.cell`` span in start
  order: where each matrix cell ran, for how long, and whether it was
  served from the artifact cache;
* **critical path** — from the heaviest root span, repeatedly descend
  into the heaviest child: the chain of spans that bounds the run's
  wall time end to end.

Plus the metric snapshot, name-sorted.  All output goes through
:class:`repro.reporting.Table`, same as every experiment table.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs import CELL_SPAN
from repro.obs.export import TraceData
from repro.obs.spans import SpanRecord, Tracer
from repro.reporting.tables import Table

TraceLike = Union[TraceData, Tracer]


def _spans(trace: TraceLike) -> list[SpanRecord]:
    return list(trace.records if isinstance(trace, Tracer) else trace.spans)


def _metrics(trace: TraceLike) -> dict[str, dict[str, object]]:
    if isinstance(trace, Tracer):
        return dict(trace.metrics.export())
    return dict(trace.metrics)


def _duration(record: SpanRecord) -> float:
    return record.duration_s or 0.0


def _children(spans: list[SpanRecord]) -> dict[Optional[int], list[SpanRecord]]:
    table: dict[Optional[int], list[SpanRecord]] = {}
    for record in spans:
        table.setdefault(record.parent_id, []).append(record)
    return table


def phase_breakdown(trace: TraceLike) -> Table:
    """Per-name totals with self time, heaviest first."""
    spans = _spans(trace)
    children = _children(spans)
    wall = sum(_duration(r) for r in children.get(None, ()))
    totals: dict[str, list[float]] = {}  # name -> [seconds, self, calls]
    for record in spans:
        child_time = sum(_duration(c)
                         for c in children.get(record.span_id, ()))
        entry = totals.setdefault(record.name, [0.0, 0.0, 0.0])
        entry[0] += _duration(record)
        entry[1] += max(0.0, _duration(record) - child_time)
        entry[2] += 1
    table = Table("phase breakdown",
                  ["span", "calls", "total s", "self s", "% of run"])
    for name in sorted(totals, key=lambda n: totals[n][0], reverse=True):
        seconds, self_s, calls = totals[name]
        share = 100.0 * seconds / wall if wall > 0 else 0.0
        table.add_row(name, int(calls), seconds, self_s, share)
    return table


def cell_timeline(trace: TraceLike) -> Table:
    """One row per runner cell, in start order."""
    cells = sorted((r for r in _spans(trace) if r.name == CELL_SPAN),
                   key=lambda r: (r.start_s, r.span_id))
    table = Table("cell timeline",
                  ["cell", "start s", "dur s", "cached", "span id"])
    for record in cells:
        table.add_row(str(record.attrs.get("cell", "?")), record.start_s,
                      _duration(record),
                      "yes" if record.attrs.get("cached") else "no",
                      record.span_id)
    return table


def critical_path(trace: TraceLike, top: int = 10) -> Table:
    """The heaviest root-to-leaf chain, at most ``top`` levels deep."""
    spans = _spans(trace)
    children = _children(spans)
    table = Table(f"critical path (top {top})",
                  ["depth", "span", "dur s", "% of parent"])
    roots = children.get(None, [])
    if not roots:
        return table
    node = max(roots, key=_duration)
    parent_s = _duration(node)
    for depth in range(top):
        share = (100.0 * _duration(node) / parent_s
                 if parent_s > 0 else 100.0)
        label = str(node.attrs.get("cell", "")) or node.name
        if label != node.name:
            label = f"{node.name} [{label}]"
        table.add_row(depth, label, _duration(node), share)
        kids = children.get(node.span_id)
        if not kids:
            break
        parent_s = _duration(node)
        node = max(kids, key=_duration)
    return table


def metrics_table(trace: TraceLike) -> Table:
    """The metric snapshot, name-sorted."""
    table = Table("metrics", ["metric", "kind", "value"])
    for name, entry in sorted(_metrics(trace).items()):
        kind = str(entry.get("kind", "?"))
        if kind == "histogram":
            count = int(entry.get("count", 0))  # type: ignore[arg-type]
            total = float(entry.get("sum", 0.0))  # type: ignore[arg-type]
            mean = total / count if count else 0.0
            value = (f"n={count} mean={mean:.3g} "
                     f"min={entry.get('min', 0)} max={entry.get('max', 0)}")
        else:
            value = f"{entry.get('value', 0)}"
        table.add_row(name, kind, value)
    return table


def render_trace_report(trace: TraceLike, top: int = 10,
                        title: Optional[str] = None) -> str:
    """The full ``repro trace`` report: all views, newline-joined."""
    parts = []
    if title:
        parts.append(title)
    parts.append(phase_breakdown(trace).render())
    timeline = cell_timeline(trace)
    if timeline.rows:
        parts.append(timeline.render())
    parts.append(critical_path(trace, top=top).render())
    if _metrics(trace):
        parts.append(metrics_table(trace).render())
    return "\n\n".join(parts)
