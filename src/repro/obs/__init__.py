"""Structured observability: spans, metrics, trace export.

The measurement substrate for the whole flow (see
``docs/OBSERVABILITY.md``):

* :func:`span` — hierarchical timed regions with attributes and a
  context-local active-span stack (:mod:`repro.obs.spans`);
* :func:`counter` / :func:`gauge` / :func:`histogram` — the metric
  registry wired into the hot paths (:mod:`repro.obs.metrics`);
* :func:`capture` + :meth:`Tracer.adopt` — cross-process propagation:
  workers ship their span trees and metric deltas back inside the
  streamed job result and the parent re-roots them, so a parallel
  matrix run yields one coherent trace;
* :mod:`repro.obs.export` — the JSONL trace format behind ``--trace``
  and the ``repro trace`` renderer (:mod:`repro.obs.report`).

Everything is off by default and costs one ``None`` check per probe;
:func:`enable` installs the process tracer.  The legacy
:mod:`repro.perf` module is a deprecated compatibility shim over this
package.
"""

from __future__ import annotations

import resource
import sys
from typing import Union

from repro.obs.metrics import (NULL_METRIC, Counter, Gauge, Histogram,
                               MetricsRegistry, _NullMetric)
from repro.obs.spans import (SpanRecord, Tracer, active, capture,
                             current_span_id, disable, enable, span)

#: Span names the runner standardises on (consumed by the renderer).
CELL_SPAN = "runner.cell"
MATRIX_SPAN = "runner.matrix"


def counter(name: str) -> Union[Counter, _NullMetric]:
    """The named counter of the installed tracer (no-op when off)."""
    tracer = active()
    if tracer is None:  # static: ok[C003] tracing toggle read; metrics are metadata, never artifact content
        return NULL_METRIC
    return tracer.metrics.counter(name)


def gauge(name: str) -> Union[Gauge, _NullMetric]:
    """The named gauge of the installed tracer (no-op when off)."""
    tracer = active()
    if tracer is None:  # static: ok[C003] tracing toggle read; metrics are metadata, never artifact content
        return NULL_METRIC
    return tracer.metrics.gauge(name)


def histogram(name: str) -> Union[Histogram, _NullMetric]:
    """The named histogram of the installed tracer (no-op when off)."""
    tracer = active()
    if tracer is None:  # static: ok[C003] tracing toggle read; metrics are metadata, never artifact content
        return NULL_METRIC
    return tracer.metrics.histogram(name)


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    Reads ``ru_maxrss`` from :func:`resource.getrusage` — kibibytes on
    Linux, bytes on macOS.  The engine publishes this as the
    ``engine.peak_rss_bytes`` gauge after each stage-batch analysis so
    ``repro trace`` shows memory next to time.
    """
    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        return rss
    return rss * 1024


__all__ = [
    "CELL_SPAN",
    "MATRIX_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "SpanRecord",
    "Tracer",
    "active",
    "capture",
    "counter",
    "current_span_id",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "peak_rss_bytes",
    "span",
]
