"""Hierarchical spans with a context-local active-span stack.

A *span* is one timed, named region of work — ``with obs.span("opt.extract",
wires=n): ...`` — carrying a deterministic sequential id, a parent link,
a start offset and duration on the **monotonic** clock, and free-form
attributes.  Nesting is explicit: the active-span stack lives in a
:class:`contextvars.ContextVar`, so the parent of a new span is whatever
span the *current context* has open, never a guess reconstructed from
timestamps.

A :class:`Tracer` owns one trace: the ordered span records, the metric
registry (:mod:`repro.obs.metrics`), and the id counter.  Ids are
sequential integers in execution order — no wall-clock values, PIDs or
object addresses ever feed a span identity, so the same code produces
the same trace *shape* on every run and in every process.

Cross-process propagation is explicit and identity-preserving:

* a worker runs under a fresh captured tracer (:func:`capture`) and
  ships :meth:`Tracer.export_payload` back with its result;
* the parent calls :meth:`Tracer.adopt`, which re-ids the records onto
  its own counter, re-roots the payload's root spans under a chosen
  parent span, and merges the metric deltas.

Because every span is one record adopted at most once, totals can never
double-count — the failure mode of the old :mod:`repro.perf` flat-dict
merge, where a cell executed in-process on a cache fallback was folded
into the parent's totals twice.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry

#: The trace clock.  Monotonic by contract: span starts/durations are
#: offsets on it, never wall-clock timestamps.
_CLOCK = time.perf_counter

#: Context-local stack of open span ids (innermost last).  One slot per
#: process is enough because at most one tracer is installed at a time.
_STACK: ContextVar[tuple[int, ...]] = ContextVar("repro_obs_stack",
                                                 default=())


@dataclass
class SpanRecord:
    """One finished (or still-open) span of a trace."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: Start offset in seconds from the owning tracer's origin.
    start_s: float
    #: Filled in when the span closes; ``None`` while still open.
    duration_s: Optional[float] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the trace-payload / JSONL ``span`` event)."""
        return {"id": self.span_id, "parent": self.parent_id,
                "name": self.name, "start_s": self.start_s,
                "dur_s": 0.0 if self.duration_s is None else self.duration_s,
                "attrs": dict(self.attrs)}


class Tracer:
    """One trace: ordered span records plus a metric registry."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.records: list[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._next_id = 1
        self._origin = _CLOCK()  # static: ok[D002] span timing is trace metadata, never artifact content

    # -- recording -----------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds of monotonic time since this trace started."""
        return _CLOCK() - self._origin  # static: ok[D002] span timing is trace metadata, never artifact content

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Open a child of the context's current span for the block."""
        sid = self._next_id
        self._next_id += 1
        stack = _STACK.get()
        record = SpanRecord(span_id=sid,
                            parent_id=stack[-1] if stack else None,
                            name=name, start_s=self.elapsed(),
                            attrs=dict(attrs))
        self.records.append(record)
        token = _STACK.set(stack + (sid,))
        try:
            yield record
        finally:
            _STACK.reset(token)
            record.duration_s = self.elapsed() - record.start_s

    # -- aggregation ---------------------------------------------------------

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-name totals, ``{name: {seconds, calls}}``.

        The :mod:`repro.perf`-compatible breakdown: nested spans are
        counted under their own name *and* inside their enclosing
        span's duration (a breakdown, not a partition).  Open spans
        are skipped — only finished work is attributed.
        """
        out: dict[str, dict[str, float]] = {}
        for record in self.records:
            if record.duration_s is None:
                continue
            entry = out.setdefault(record.name, {"seconds": 0.0, "calls": 0})
            entry["seconds"] += record.duration_s
            entry["calls"] += 1
        return out

    def children_of(self) -> dict[Optional[int], list[SpanRecord]]:
        """Parent id -> ordered child records (``None`` = the roots)."""
        table: dict[Optional[int], list[SpanRecord]] = {}
        for record in self.records:
            table.setdefault(record.parent_id, []).append(record)
        return table

    # -- cross-process propagation -------------------------------------------

    def export_payload(self) -> dict[str, Any]:
        """The serializable trace: span records + metric snapshot.

        This is what a worker streams back inside its job result; the
        parent re-roots it with :meth:`adopt`.  Plain dicts and scalars
        only, so the payload survives pickling and JSON alike.
        """
        return {"name": self.name,
                "records": [r.as_dict() for r in self.records],
                "metrics": self.metrics.export()}

    def adopt(self, payload: dict[str, Any],
              parent_id: Optional[int] = None) -> list[int]:
        """Fold a :meth:`export_payload` into this trace.

        Records are re-identified onto this tracer's counter (one new
        id per record — identity is preserved, so adopting can never
        double-count), root spans are re-parented under ``parent_id``,
        and start offsets are shifted so the payload's latest span ends
        at this trace's current elapsed time (workers finish just
        before the parent adopts their result).  Metric deltas merge
        into this tracer's registry.  Returns the new ids.
        """
        records = payload.get("records", [])
        shift = 0.0
        if records:
            ends = [r["start_s"] + r["dur_s"] for r in records]
            shift = self.elapsed() - max(ends)
        id_map: dict[int, int] = {}
        new_ids: list[int] = []
        for r in records:
            sid = self._next_id
            self._next_id += 1
            id_map[r["id"]] = sid
            new_ids.append(sid)
            parent = (id_map.get(r["parent"])
                      if r["parent"] is not None else parent_id)
            self.records.append(SpanRecord(
                span_id=sid, parent_id=parent, name=r["name"],
                start_s=r["start_s"] + shift, duration_s=r["dur_s"],
                attrs=dict(r["attrs"])))
        self.metrics.merge(payload.get("metrics", {}))
        return new_ids


# -- the installed tracer ------------------------------------------------------

_TRACER: Optional[Tracer] = None


def enable(name: str = "session") -> Tracer:
    """Install (or return the already-installed) process tracer."""
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer(name)  # static: ok[D004] process-local tracing slot; spans are metadata, never artifact content
    return _TRACER


def disable() -> None:
    """Remove the tracer; ``span`` blocks become no-ops again."""
    global _TRACER
    _TRACER = None  # static: ok[D004] process-local tracing slot; spans are metadata, never artifact content


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _TRACER  # static: ok[C003] tracing toggle read; spans are metadata, never artifact content


def current_span_id() -> Optional[int]:
    """Id of the context's innermost open span, or ``None``."""
    stack = _STACK.get()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[SpanRecord]]:
    """Record a span when tracing is enabled; free no-op otherwise."""
    if _TRACER is None:  # static: ok[C003] tracing toggle read; spans are metadata, never artifact content
        yield None
    else:
        with _TRACER.span(name, **attrs) as record:  # static: ok[C003] tracing toggle read; spans are metadata, never artifact content
            yield record


@contextmanager
def capture(name: str = "capture", reroot: bool = True) -> Iterator[Tracer]:
    """Run the block under a fresh tracer; yield it.

    The installed tracer (if any) is swapped out for the block and
    restored afterwards.  With ``reroot`` (the default), the captured
    trace is then adopted into the outer tracer under the context's
    current span — the outer trace still sees every span, but each one
    exactly once, keyed by identity rather than flat-merged by name.
    This is how the runner gives every job its own trace without
    losing the spans from a ``--trace`` session total, and it is the
    span-identity fix for the old ``perf.capture`` double-count.
    """
    global _TRACER
    outer = _TRACER
    inner = Tracer(name)
    _TRACER = inner  # static: ok[D004] process-local tracing slot, restored in the finally below
    stack_token = _STACK.set(())
    try:
        yield inner
    finally:
        _STACK.reset(stack_token)
        _TRACER = outer  # static: ok[D004] restores the outer tracer; tracing state never crosses processes
        if outer is not None and reroot:
            outer.adopt(inner.export_payload(),
                        parent_id=current_span_id())
