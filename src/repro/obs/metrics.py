"""The metrics registry: counters, gauges and histogram summaries.

Metrics complement spans: a span says *where the time went*, a metric
says *how often something happened* (artifact-store hits, optimizer
iterations, verify diagnostics) or *how big something was* (delta-plan
sizes, dirty-wire counts).  Each :class:`~repro.obs.spans.Tracer` owns
one :class:`MetricsRegistry`; the module-level helpers in
:mod:`repro.obs` resolve against the installed tracer and degrade to a
shared no-op when tracing is off, so hot-path instrumentation costs one
``None`` check when disabled.

Cross-process semantics mirror spans: a worker's registry is exported
with its trace payload and merged into the parent's — counters add,
gauges last-write, histogram summaries combine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def export(self) -> dict[str, Any]:
        """JSON-ready snapshot (the trace ``metric`` event body)."""
        return {"kind": "counter", "value": self.value}

    def merge(self, other: dict[str, Any]) -> None:
        """Fold an exported counter in: counts add."""
        self.value += float(other["value"])


@dataclass
class Gauge:
    """A last-write-wins instantaneous value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def export(self) -> dict[str, Any]:
        """JSON-ready snapshot (the trace ``metric`` event body)."""
        return {"kind": "gauge", "value": self.value}

    def merge(self, other: dict[str, Any]) -> None:
        """Fold an exported gauge in: last write wins."""
        self.value = float(other["value"])


@dataclass
class Histogram:
    """A streaming summary (count/sum/min/max) of observed values."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of everything observed so far (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def export(self) -> dict[str, Any]:
        """JSON-ready snapshot (the trace ``metric`` event body)."""
        return {"kind": "histogram", "count": self.count,
                "sum": self.total, "min": self.min, "max": self.max}

    def merge(self, other: dict[str, Any]) -> None:
        """Fold an exported histogram in: summaries combine."""
        count = int(other["count"])
        if count == 0:
            return
        if self.count == 0:
            self.min, self.max = float(other["min"]), float(other["max"])
        else:
            self.min = min(self.min, float(other["min"]))
            self.max = max(self.max, float(other["max"]))
        self.count += count
        self.total += float(other["sum"])


Metric = Union[Counter, Gauge, Histogram]

_KINDS: dict[str, type[Metric]] = {"counter": Counter, "gauge": Gauge,
                                   "histogram": Histogram}


class _NullMetric:
    """Accepts every metric operation and records nothing.

    The shared sink the module-level helpers hand out when no tracer
    is installed — instrumented hot paths never branch on "is tracing
    on" beyond the helper's single lookup.
    """

    def inc(self, amount: float = 1.0) -> None:
        """Discard a counter increment."""

    def set(self, value: float) -> None:
        """Discard a gauge write."""

    def observe(self, value: float) -> None:
        """Discard a histogram observation."""


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metrics, get-or-create by kind."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type[Metric]) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} is {type(metric).__name__}, "
                            f"requested as {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        """The named counter (created on first use)."""
        metric = self._get(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created on first use)."""
        metric = self._get(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created on first use)."""
        metric = self._get(name, Histogram)
        assert isinstance(metric, Histogram)
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def value(self, name: str) -> float:
        """Scalar value of a counter/gauge (KeyError when absent)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; "
                            f"read .export() fields instead")
        return metric.value

    def export(self) -> dict[str, dict[str, Any]]:
        """JSON-ready snapshot, name-sorted: ``{name: {kind, ...}}``."""
        return {name: self._metrics[name].export()
                for name in sorted(self._metrics)}

    def merge(self, exported: dict[str, dict[str, Any]]) -> None:
        """Fold an :meth:`export` snapshot (a worker's deltas) in."""
        for name in sorted(exported):
            entry = exported[name]
            kind = _KINDS.get(str(entry.get("kind")))
            if kind is None:
                raise ValueError(f"metric {name!r} has unknown kind "
                                 f"{entry.get('kind')!r}")
            self._get(name, kind).merge(entry)
