"""Trace JSONL export and parsing.

A trace file is newline-delimited JSON, one *event* per line:

``meta``
    First line.  ``{"event": "meta", "schema": 1, "name": ...,
    "digest": <sha256 of every following line>}`` — the digest makes
    the file self-addressing: its canonical filename is
    ``<digest>.jsonl`` and a reader can detect truncation.
``span``
    ``{"event": "span", "id", "parent", "name", "start_s", "dur_s",
    "attrs"}`` — one finished span, ids sequential, parents before
    children.
``metric``
    ``{"event": "metric", "name", "kind", ...}`` — one registry entry
    (``counter``/``gauge`` carry ``value``; ``histogram`` carries
    ``count``/``sum``/``min``/``max``).

:func:`export_jsonl` writes a tracer out (to an explicit path, or
content-addressed into a directory); :func:`load_trace` parses and
validates a file back into a :class:`TraceData`.  The schema is
deliberately small and documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord, Tracer

#: Bump on any incompatible change to the event layout.
TRACE_SCHEMA = 1

_SPAN_KEYS = {"event", "id", "parent", "name", "start_s", "dur_s", "attrs"}
_METRIC_KINDS = {"counter": {"value"}, "gauge": {"value"},
                 "histogram": {"count", "sum", "min", "max"}}


class TraceSchemaError(ValueError):
    """A trace file does not conform to :data:`TRACE_SCHEMA`."""


@dataclass
class TraceData:
    """A parsed trace file: meta header, spans, metric snapshot."""

    meta: dict[str, Any]
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return str(self.meta.get("name", "trace"))

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-name totals over the spans (see ``Tracer.phase_totals``)."""
        out: dict[str, dict[str, float]] = {}
        for record in self.spans:
            entry = out.setdefault(record.name, {"seconds": 0.0, "calls": 0})
            entry["seconds"] += record.duration_s or 0.0
            entry["calls"] += 1
        return out


def _event_lines(tracer: Tracer) -> list[str]:
    """The span/metric event lines (everything after the meta line)."""
    lines = []
    for record in tracer.records:
        lines.append(json.dumps({"event": "span", **record.as_dict()},
                                sort_keys=True, separators=(",", ":")))
    for name, entry in tracer.metrics.export().items():
        lines.append(json.dumps({"event": "metric", "name": name, **entry},
                                sort_keys=True, separators=(",", ":")))
    return lines


def trace_digest(lines: list[str]) -> str:
    """sha256 over the event lines — the trace's content address."""
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def export_jsonl(tracer: Tracer,
                 path: Optional[Union[str, Path]] = None,
                 directory: Optional[Union[str, Path]] = None) -> Path:
    """Write ``tracer`` as trace JSONL; return the file written.

    With ``path``, write exactly there.  With ``directory`` instead,
    the file is content-addressed: ``<directory>/<digest>.jsonl`` —
    the spelling used to park traces next to the artifact store.
    """
    lines = _event_lines(tracer)
    digest = trace_digest(lines)
    if path is None:
        if directory is None:
            raise ValueError("export_jsonl needs a path or a directory")
        path = Path(directory) / f"{digest}.jsonl"
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    meta = json.dumps({"event": "meta", "schema": TRACE_SCHEMA,
                       "name": tracer.name, "digest": digest},
                      sort_keys=True, separators=(",", ":"))
    out.write_text("\n".join([meta, *lines]) + "\n", encoding="utf-8")
    return out


def _check(cond: bool, lineno: int, msg: str) -> None:
    if not cond:
        raise TraceSchemaError(f"trace line {lineno}: {msg}")


def validate_event(event: dict[str, Any], lineno: int) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` is well-formed."""
    kind = event.get("event")
    if kind == "span":
        _check(set(event) == _SPAN_KEYS, lineno,
               f"span keys {sorted(event)} != {sorted(_SPAN_KEYS)}")
        _check(isinstance(event["id"], int) and event["id"] > 0, lineno,
               "span id must be a positive int")
        _check(event["parent"] is None or isinstance(event["parent"], int),
               lineno, "span parent must be an int or null")
        _check(isinstance(event["name"], str) and bool(event["name"]),
               lineno, "span name must be a non-empty string")
        _check(isinstance(event["start_s"], (int, float)), lineno,
               "span start_s must be a number")
        _check(isinstance(event["dur_s"], (int, float))
               and event["dur_s"] >= 0.0, lineno,
               "span dur_s must be a non-negative number")
        _check(isinstance(event["attrs"], dict), lineno,
               "span attrs must be an object")
    elif kind == "metric":
        wanted = _METRIC_KINDS.get(str(event.get("kind")))
        _check(wanted is not None, lineno,
               f"unknown metric kind {event.get('kind')!r}")
        assert wanted is not None
        _check(isinstance(event.get("name"), str), lineno,
               "metric name must be a string")
        missing = wanted - set(event)
        _check(not missing, lineno, f"metric missing fields {sorted(missing)}")
    elif kind == "meta":
        _check(event.get("schema") == TRACE_SCHEMA, lineno,
               f"schema {event.get('schema')!r} != {TRACE_SCHEMA}")
    else:
        raise TraceSchemaError(f"trace line {lineno}: "
                               f"unknown event {kind!r}")


def load_trace(path: Union[str, Path]) -> TraceData:
    """Parse and validate a trace JSONL file.

    Raises :class:`TraceSchemaError` on malformed events, a missing or
    mismatched meta header, dangling parent links, or a digest that
    does not cover the event lines (truncated file).
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceSchemaError(f"{path}: empty trace file")
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"trace line {lineno}: bad JSON "
                                   f"({exc.msg})") from exc
        _check(isinstance(event, dict), lineno, "event must be an object")
        validate_event(event, lineno)
        events.append(event)
    _check(events[0].get("event") == "meta", 1,
           "first event must be the meta header")
    meta = events[0]
    digest = trace_digest(lines[1:])
    _check(meta.get("digest") == digest, 1,
           "digest mismatch: trace file is truncated or edited")
    data = TraceData(meta=meta)
    seen_ids: set[int] = set()
    for lineno, event in enumerate(events[1:], start=2):
        if event["event"] == "span":
            _check(event["id"] not in seen_ids, lineno,
                   f"duplicate span id {event['id']}")
            _check(event["parent"] is None or event["parent"] in seen_ids,
                   lineno, f"span {event['id']} has unknown parent "
                           f"{event['parent']} (parents precede children)")
            seen_ids.add(event["id"])
            data.spans.append(SpanRecord(
                span_id=event["id"], parent_id=event["parent"],
                name=event["name"], start_s=float(event["start_s"]),
                duration_s=float(event["dur_s"]),
                attrs=dict(event["attrs"])))
        elif event["event"] == "metric":
            entry = {k: v for k, v in event.items()
                     if k not in ("event", "name")}
            data.metrics[event["name"]] = entry
        else:
            _check(False, lineno, "meta header must be the first event")
    # Round-trip the metrics through a registry so kinds are coherent.
    MetricsRegistry().merge(data.metrics)
    return data
