"""Reporting: ASCII tables and experiment records.

Substrate S14 in DESIGN.md.  Used by the benchmark harness to print the
paper-style tables and figure series.
"""

from repro.reporting.tables import Table, format_table
from repro.reporting.record import ExperimentRecord, Series
from repro.reporting.summary import analysis_summary

__all__ = ["Table", "format_table", "ExperimentRecord", "Series",
           "analysis_summary"]
