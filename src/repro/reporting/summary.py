"""Human-readable summary of a full analysis bundle.

One screen of text answering the signoff questions in order: does the
clock meet timing, SI, variation, EM — and what does it cost.  Used by
``python -m repro run --verbose`` and handy in notebooks.
"""

from __future__ import annotations

from repro.core.evaluation import AnalysisBundle
from repro.core.targets import RobustnessTargets


def _check(ok: bool) -> str:
    return "PASS" if ok else "FAIL"


def analysis_summary(bundle: AnalysisBundle, targets: RobustnessTargets,
                     title: str = "clock network") -> str:
    """Render the signoff-style summary of one analyzed clock network."""
    t = bundle.timing
    xt = bundle.crosstalk
    mc = bundle.mc
    em = bundle.em
    p = bundle.power

    lines = [
        f"=== {title} ===",
        "",
        "timing",
        f"  latency        {t.latency:9.1f} ps",
        f"  skew           {t.skew:9.2f} ps",
        f"  worst slew     {t.worst_slew:9.1f} ps   "
        f"(limit {targets.max_slew:.0f})  "
        f"{_check(t.worst_slew <= targets.max_slew)}",
        "",
        "signal integrity",
        f"  worst delta    {xt.worst_delta:9.2f} ps   "
        f"(budget {targets.max_worst_delta:.2f})  "
        f"{_check(xt.worst_delta <= targets.max_worst_delta)}",
        f"  mean delta     {xt.mean_worst_delta:9.2f} ps",
        "",
        "process variation",
        f"  mean skew      {mc.mean_skew:9.2f} ps   "
        f"({mc.n_samples} samples)",
        f"  mu + 3 sigma   {mc.skew_3sigma:9.2f} ps   "
        f"(budget {targets.max_skew_3sigma:.2f})  "
        f"{_check(mc.skew_3sigma <= targets.max_skew_3sigma)}",
        "",
        "electromigration",
        f"  violations     {em.num_violations:9d}      "
        f"{_check(em.num_violations == 0)}",
        f"  worst util     {em.worst_utilization:9.2f}",
        "",
        "power",
        f"  wire           {p.p_wire:9.1f} uW  ({p.wire_cap:.0f} fF, "
        f"{p.coupling_cap:.0f} fF coupling)",
        f"  flop pins      {p.p_pin:9.1f} uW",
        f"  buffer inputs  {p.p_buffer_cap:9.1f} uW",
        f"  delay trims    {p.p_pad:9.1f} uW",
        f"  buffer internal{p.p_buffer_internal:9.1f} uW",
        f"  leakage        {p.p_leakage:9.1f} uW",
        f"  TOTAL          {p.p_total:9.1f} uW",
        "",
        f"verdict: {_check(bundle.feasible(targets))}"
        f" ({len(bundle.violations(targets))} violated constraints)",
    ]
    return "\n".join(lines)
