"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A titled table assembled row by row."""

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row (arity-checked against the columns)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns")
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """The table as boxed ASCII text."""
        return format_table(self.title, self.columns, self.rows)

    def to_csv(self) -> str:
        """The table as CSV (header row + data rows)."""
        def esc(cell: str) -> str:
            text = str(cell).replace('"', '""')
            if "," in text or '"' in text:
                return f'"{text}"'
            return text

        lines = [",".join(esc(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(esc(c.replace(",", ""))
                                  for c in row))
        return "\n".join(lines) + "\n"

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if not cell:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[str]],
                 min_width: int = 6) -> str:
    """Render a boxed ASCII table."""
    cols = [str(c) for c in columns]
    widths = [max(min_width, len(c)) for c in cols]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(str(c).rjust(w)
                                 for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [title, sep, line(cols), sep]
    for row in rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)
