"""Experiment records: named metric series for figures and regressions."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One named (x, y) series of a figure."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)

    def as_rows(self) -> list[tuple[float, float]]:
        """The series as a list of (x, y) tuples."""
        return list(zip(self.xs, self.ys))


@dataclass
class ExperimentRecord:
    """All series of one experiment (one figure), printable as text."""

    experiment_id: str
    description: str
    x_label: str
    y_label: str
    series: dict[str, Series] = field(default_factory=dict)

    def series_named(self, name: str) -> Series:
        """Get (or create) the series with this name."""
        if name not in self.series:
            self.series[name] = Series(name=name)
        return self.series[name]

    def render(self) -> str:
        """The record as indented plain text."""
        out = [f"{self.experiment_id}: {self.description}",
               f"  x = {self.x_label}, y = {self.y_label}"]
        for name, series in self.series.items():
            points = ", ".join(f"({x:g}, {y:.4g})"
                               for x, y in series.as_rows())
            out.append(f"  {name}: {points}")
        return "\n".join(out)

    def to_csv(self) -> str:
        """The record as CSV: ``series,x,y`` rows (plot-tool friendly)."""
        lines = ["series,x,y"]
        for name, series in self.series.items():
            for x, y in series.as_rows():
                lines.append(f"{name},{x:g},{y:g}")
        return "\n".join(lines) + "\n"

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
