"""Clock power model, with optional clock gating.

Substrate S9 in DESIGN.md.
"""

from repro.power.clockpower import PowerReport, analyze_power
from repro.power.gating import (ClockGateCell, GatingPlan,
                                analyze_gated_power, stage_activities,
                                uniform_gating_plan)

__all__ = [
    "PowerReport",
    "analyze_power",
    "ClockGateCell",
    "GatingPlan",
    "analyze_gated_power",
    "stage_activities",
    "uniform_gating_plan",
]
