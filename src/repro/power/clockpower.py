"""Clock network power.

The clock toggles every cycle, so every capacitance hanging on the
network is charged and discharged once per cycle:

    P_dyn = f * Vdd^2 * C_total  +  f * sum(E_internal)  +  sum(P_leak)

with ``C_total`` split into wire capacitance (the part NDR selection
moves), flop clock-pin capacitance, and buffer input capacitance.  In
the library's units (fF, V, GHz) the products land directly in uW.

Coupling capacitance to *signal* neighbors counts fully (the victim
charges it each edge; quiet aggressors are ground at first order);
coupling between two branches of the same clock net counts zero (both
ends move together, no charge transfer) — the extractor already applies
this convention in ``c_switched``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated

from repro.extract.extractor import Extraction
from repro.tech.technology import Technology
from repro.units import Dim


@dataclass(frozen=True)
class PowerReport:
    """Clock power breakdown, all capacitances in fF and powers in uW."""

    wire_cap: float
    pin_cap: float
    buffer_in_cap: float
    pad_cap: float            # delay-equalising dummy loads
    coupling_cap: float       # signal-coupling portion of wire_cap
    p_wire: float
    p_pin: float
    p_buffer_cap: float
    p_pad: float
    p_buffer_internal: float
    p_leakage: float

    @property
    def total_cap(self) -> Annotated[float, Dim.CAPACITANCE]:
        return self.wire_cap + self.pin_cap + self.buffer_in_cap + self.pad_cap

    @property
    def p_dynamic(self) -> Annotated[float, Dim.POWER]:
        return (self.p_wire + self.p_pin + self.p_buffer_cap + self.p_pad
                + self.p_buffer_internal)

    @property
    def p_total(self) -> Annotated[float, Dim.POWER]:
        return self.p_dynamic + self.p_leakage


def analyze_power(extraction: Extraction, tech: Technology,
                  freq: Annotated[float, Dim.FREQUENCY]) -> PowerReport:
    """Compute the clock power breakdown at clock frequency ``freq`` GHz."""
    if freq <= 0.0:
        raise ValueError("clock frequency must be positive")
    network = extraction.network
    vdd = tech.vdd
    cv2f = vdd * vdd * freq

    wire_cap = extraction.clock_wire_cap
    coupling_cap = extraction.clock_coupling_cap

    pin_cap = 0.0
    for stage in network.stages:
        for sink in stage.sinks:
            if sink.is_flop:
                pin_cap += sink.sink_pin.cap

    # Buffer inputs: every stage driver except the root's is charged by
    # the clock net (the root buffer is driven by the external source).
    buffer_in_cap = sum(
        stage.driver.c_in
        for idx, stage in enumerate(network.stages)
        if idx != network.root_stage)

    # Delay-trim capacitance: dummy loads plus series-snake wire cap.
    pad_cap = sum(stage.pad_cap + stage.snake_cap for stage in network.stages)
    p_internal = freq * sum(stage.driver.e_internal for stage in network.stages)
    p_leak = sum(stage.driver.p_leak for stage in network.stages)

    return PowerReport(
        wire_cap=wire_cap,
        pin_cap=pin_cap,
        buffer_in_cap=buffer_in_cap,
        pad_cap=pad_cap,
        coupling_cap=coupling_cap,
        p_wire=cv2f * wire_cap,
        p_pin=cv2f * pin_cap,
        p_buffer_cap=cv2f * buffer_in_cap,
        p_pad=cv2f * pad_cap,
        p_buffer_internal=p_internal,
        p_leakage=p_leak,
    )
