"""Clock gating on top of the routed network.

Gating is orthogonal to NDR selection but interacts with everything
this library measures: an integrated clock gate (ICG) at a buffered
stage stops the subtree below it from toggling in cycles its enable is
low, scaling that subtree's *dynamic* power — and its EM current — by
the enable probability, while worst-case SI and skew analyses still
assume the enabled (toggling) case.

Model:

* A :class:`GatingPlan` maps buffered tree nodes to enable
  probabilities.  A stage's *effective activity* is the product of the
  enable probabilities of all gates on its chain from the root.
* Each gate is an ICG cell (:class:`ClockGateCell`): it loads its
  parent stage with an input capacitance and burns internal energy at
  the parent's (pre-gate) rate.
* :func:`analyze_gated_power` mirrors
  :func:`repro.power.clockpower.analyze_power` with per-stage activity
  scaling; :func:`gated_em_utilization` gives the EM relief.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated

from repro.extract.extractor import Extraction
from repro.extract.rcnetwork import ClockRcNetwork
from repro.power.clockpower import PowerReport
from repro.tech.technology import Technology
from repro.units import Dim


@dataclass(frozen=True)
class ClockGateCell:
    """An integrated clock gate (ICG) cell.

    ``c_in`` loads the parent stage (fF); ``e_internal`` is burned per
    parent-clock cycle (fJ); ``p_leak`` in uW.
    """

    name: str = "ICG_X2"
    c_in: float = 2.2
    e_internal: float = 1.1
    p_leak: float = 0.03


@dataclass
class GatingPlan:
    """Which buffered tree nodes carry a clock gate, and their enables."""

    gates: dict[int, float] = field(default_factory=dict)
    cell: ClockGateCell = field(default_factory=ClockGateCell)

    def add(self, tree_node_id: int, enable_probability: float) -> None:
        """Gate the stage rooted at ``tree_node_id`` with this enable."""
        if not 0.0 <= enable_probability <= 1.0:
            raise ValueError(
                f"enable probability must be in [0, 1], got "
                f"{enable_probability}")
        self.gates[tree_node_id] = enable_probability

    def __len__(self) -> int:
        return len(self.gates)


def stage_activities(network: ClockRcNetwork,
                     plan: GatingPlan) -> dict[int, float]:
    """Effective toggle activity per stage index under ``plan``.

    The root stage toggles every cycle; each gate scales its subtree by
    its enable probability (gates compose multiplicatively down the
    chain).
    """
    activity: dict[int, float] = {}

    def walk(stage_idx: int, upstream: float) -> None:
        own = upstream * plan.gates.get(
            network.stages[stage_idx].tree_node_id, 1.0)
        activity[stage_idx] = own
        for child in network.stage_children(stage_idx):
            walk(child, own)

    walk(network.root_stage, 1.0)
    return activity


def analyze_gated_power(extraction: Extraction, tech: Technology,
                        freq: Annotated[float, Dim.FREQUENCY],
                        plan: GatingPlan) -> PowerReport:
    """Clock power with per-stage activity scaling from ``plan``.

    Capacitance fields report the *effective switched* capacitance
    (physical capacitance weighted by its stage's activity), so the
    ``C * V^2 * f`` relation of the report still holds.
    """
    if freq <= 0.0:
        raise ValueError("clock frequency must be positive")
    network = extraction.network
    vdd = tech.vdd
    cv2f = vdd * vdd * freq
    activity = stage_activities(network, plan)

    # Map each clock wire to its stage for activity weighting.
    stage_of_wire: dict[int, int] = {}
    for idx, stage in enumerate(network.stages):
        for node in stage.nodes:
            if node.wire_id is not None:
                stage_of_wire[node.wire_id] = idx

    wire_cap = 0.0
    coupling_cap = 0.0
    for wire in extraction.routing.clock_wires:
        para = extraction.wires.get(wire.wire_id)
        if para is None:
            continue
        act = activity.get(stage_of_wire.get(wire.wire_id, -1), 1.0)
        wire_cap += act * para.c_switched
        coupling_cap += act * para.cc_signal

    parent_of = _parent_map(network)

    def parent_activity(stage_idx: int) -> float:
        parent = parent_of.get(stage_idx)
        return activity[parent] if parent is not None else 1.0

    pin_cap = 0.0
    buffer_in_cap = 0.0
    pad_cap = 0.0
    p_internal = 0.0
    p_leak = 0.0
    for idx, stage in enumerate(network.stages):
        act = activity[idx]
        pad_cap += act * (stage.pad_cap + stage.snake_cap)
        p_internal += act * freq * stage.driver.e_internal
        p_leak += stage.driver.p_leak
        for sink in stage.sinks:
            if sink.is_flop:
                pin_cap += act * sink.sink_pin.cap
        if idx != network.root_stage:
            # A stage driver's input pin toggles at its *parent's* rate
            # (the gate sits between the pin and the subtree).
            buffer_in_cap += parent_activity(idx) * stage.driver.c_in

    # Gate cells: loaded and clocked at their parent stage's rate.
    cell = plan.cell
    for tree_node_id in plan.gates:
        stage_idx = network.stage_of_tree_node.get(tree_node_id)
        if stage_idx is None:
            raise KeyError(f"gated node {tree_node_id} is not a buffered "
                           "stage root")
        parent_act = parent_activity(stage_idx)
        buffer_in_cap += parent_act * cell.c_in
        p_internal += parent_act * freq * cell.e_internal
        p_leak += cell.p_leak

    return PowerReport(
        wire_cap=wire_cap,
        pin_cap=pin_cap,
        buffer_in_cap=buffer_in_cap,
        pad_cap=pad_cap,
        coupling_cap=coupling_cap,
        p_wire=cv2f * wire_cap,
        p_pin=cv2f * pin_cap,
        p_buffer_cap=cv2f * buffer_in_cap,
        p_pad=cv2f * pad_cap,
        p_buffer_internal=p_internal,
        p_leakage=p_leak,
    )


def _parent_map(network: ClockRcNetwork) -> dict[int, int]:
    """Child stage index -> parent stage index."""
    parent: dict[int, int] = {}
    for idx in range(len(network.stages)):
        for child in network.stage_children(idx):
            parent[child] = idx
    return parent


def uniform_gating_plan(network: ClockRcNetwork, enable: float,
                        min_flops: int = 2) -> GatingPlan:
    """Gate each subtree once: the shallowest non-root stages covering
    >= ``min_flops`` flops, never nesting gates (a flop sees at most one
    gate, as in a one-level enable structure).

    A simple coverage policy for experiments; real plans come from the
    RTL's enable structure.
    """
    plan = GatingPlan()
    flops_below: dict[int, int] = {}

    def count(stage_idx: int) -> int:
        total = 0
        for sink in network.stages[stage_idx].sinks:
            if sink.is_flop:
                total += 1
            else:
                total += count(
                    network.stage_of_tree_node[sink.next_stage_tree_id])
        flops_below[stage_idx] = total
        return total

    count(network.root_stage)

    def place(stage_idx: int) -> None:
        if stage_idx != network.root_stage \
                and flops_below[stage_idx] >= min_flops:
            plan.add(network.stages[stage_idx].tree_node_id, enable)
            return  # one gate per chain: don't descend
        for child in network.stage_children(stage_idx):
            place(child)

    place(network.root_stage)
    return plan
