"""Back-compat shim over :mod:`repro.designs`.

The synthetic benchmark generators grew into the design-corpus
subsystem (declarative specs, families, the H-tree SoC generator, the
DEF-lite importer).  This package re-exports the historical surface so
``from repro.bench import generate_design`` keeps working; new code
should import from :mod:`repro.designs` directly.
"""

from repro.designs import (DesignSpec, benchmark_suite, generate_aggressors,
                           generate_design, spec_by_name)

__all__ = [
    "DesignSpec",
    "generate_design",
    "benchmark_suite",
    "spec_by_name",
    "generate_aggressors",
]
