"""Synthetic benchmark designs.

Substrate S13 in DESIGN.md.  These stand in for the paper's proprietary
industrial testcases: seeded generators produce placed designs with
clustered sink flops and locality-bounded aggressor nets whose geometry
statistics (sink pitch, aggressor density, activity) are the knobs the
experiments sweep.
"""

from repro.bench.designs import DesignSpec, generate_design, benchmark_suite, spec_by_name
from repro.bench.aggressors import generate_aggressors

__all__ = [
    "DesignSpec",
    "generate_design",
    "benchmark_suite",
    "spec_by_name",
    "generate_aggressors",
]
