"""Benchmark design specifications and the seeded generator.

The suite scales from 64 to 2048 sinks with die sizes that keep the
sink pitch in the 25-50 um range of real placed blocks, and with
aggressor densities (signal nets per sink) that put a realistic number
of switching wires next to the clock.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.bench.aggressors import generate_aggressors
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.design import Design
from repro.units import NS


@dataclass(frozen=True)
class DesignSpec:
    """Everything needed to reproduce one benchmark design.

    Attributes
    ----------
    name:
        Design name (also the seed salt).
    n_sinks:
        Number of clock sink flops.
    die_edge:
        Die edge length, um (square die).
    aggressors_per_sink:
        Signal net count as a multiple of the sink count.
    mean_activity:
        Mean aggressor toggle probability per cycle.
    clock_period:
        ps.
    n_clusters:
        Sink placement clusters (0 = uniform).
    seed:
        Generator seed.
    flop_cin:
        Clock pin capacitance of each sink flop, fF.
    n_blockages:
        Hard macros (placement + routing keep-outs) dropped on the die.
    blockage_fraction:
        Macro edge length as a fraction of the die edge.
    """

    name: str
    n_sinks: int
    die_edge: float
    aggressors_per_sink: float = 2.0
    mean_activity: float = 0.15
    clock_period: float = NS
    n_clusters: int = 4
    seed: int = 7
    flop_cin: float = 1.8
    n_blockages: int = 0
    blockage_fraction: float = 0.18
    #: Give aggressor nets switching windows (for window-pruned SI).
    aggressor_windows: bool = False

    @property
    def n_aggressors(self) -> int:
        return int(round(self.n_sinks * self.aggressors_per_sink))


def generate_design(spec: DesignSpec) -> Design:
    """Deterministically build the placed design for ``spec``."""
    if spec.n_sinks < 1:
        raise ValueError("need at least one sink")
    # zlib.crc32 is stable across interpreter runs (unlike hash()).
    rng = np.random.default_rng(spec.seed + zlib.crc32(spec.name.encode()) % (2 ** 16))
    die = Rect(0.0, 0.0, spec.die_edge, spec.die_edge)
    design = Design(name=spec.name, die=die, clock_period=spec.clock_period)
    design.add_clock_source(Point(spec.die_edge / 2.0, 0.0))

    _place_blockages(rng, spec, design)
    locations = _sink_locations(rng, spec, design)
    for i, loc in enumerate(locations):
        design.add_flop(f"ff_{i}", loc, clock_pin_cap=spec.flop_cin)

    generate_aggressors(
        design, rng,
        count=spec.n_aggressors,
        locality=max(40.0, spec.die_edge * 0.08),
        mean_activity=spec.mean_activity,
        with_windows=spec.aggressor_windows,
    )
    design.validate()
    return design


def _place_blockages(rng: np.random.Generator, spec: DesignSpec,
                     design: Design) -> None:
    """Drop disjoint hard macros on the die (keep-out margin between them)."""
    if spec.n_blockages <= 0:
        return
    edge = spec.die_edge * spec.blockage_fraction
    margin = spec.die_edge * 0.08
    placed: list[Rect] = []
    attempts = 0
    while len(placed) < spec.n_blockages and attempts < 200:
        attempts += 1
        x = float(rng.uniform(margin, spec.die_edge - margin - edge))
        y = float(rng.uniform(margin, spec.die_edge - margin - edge))
        rect = Rect(x, y, x + edge, y + edge)
        if any(rect.expanded(4.0).intersects(other) for other in placed):
            continue
        placed.append(rect)
        design.add_blockage(rect)


def _sink_locations(rng: np.random.Generator, spec: DesignSpec,
                    design: Design) -> list[Point]:
    """Clustered-plus-uniform sink placement, deduplicated on a fine grid."""
    margin = spec.die_edge * 0.03
    lo, hi = margin, spec.die_edge - margin
    points: list[Point] = []
    taken: set[tuple[int, int]] = set()

    def try_add(x: float, y: float) -> None:
        x = float(np.clip(x, lo, hi))
        y = float(np.clip(y, lo, hi))
        p = Point(round(x, 3), round(y, 3))
        if any(b.contains(p) for b in design.blockages):
            return
        key = (int(x / 2.0), int(y / 2.0))  # 2 um exclusion grid
        if key in taken:
            return
        taken.add(key)
        points.append(p)

    if spec.n_clusters > 0:
        centers = [(float(rng.uniform(lo, hi)), float(rng.uniform(lo, hi)))
                   for _ in range(spec.n_clusters)]
        sigma = spec.die_edge * 0.10
        clustered_target = int(spec.n_sinks * 0.7)
        while len(points) < clustered_target:
            cx, cy = centers[int(rng.integers(0, spec.n_clusters))]
            try_add(float(rng.normal(cx, sigma)), float(rng.normal(cy, sigma)))
    while len(points) < spec.n_sinks:
        try_add(float(rng.uniform(lo, hi)), float(rng.uniform(lo, hi)))
    return points[:spec.n_sinks]


#: The six-design suite every table iterates over (Table 1 reports it).
_SUITE: tuple[DesignSpec, ...] = (
    DesignSpec("ckt64", n_sinks=64, die_edge=280.0, seed=11),
    DesignSpec("ckt128", n_sinks=128, die_edge=400.0, seed=12),
    DesignSpec("ckt256", n_sinks=256, die_edge=560.0, seed=13),
    DesignSpec("ckt512", n_sinks=512, die_edge=800.0, seed=14),
    DesignSpec("ckt1024", n_sinks=1024, die_edge=1120.0, seed=15),
    DesignSpec("ckt2048", n_sinks=2048, die_edge=1600.0, seed=16),
)


#: Additional named designs outside the standard tables (macro variants,
#: plus the scaling-benchmark rungs above the Table-1 sizes).
_EXTRA: tuple[DesignSpec, ...] = (
    DesignSpec("ckt256m", n_sinks=256, die_edge=560.0, seed=13,
               n_blockages=3),
    DesignSpec("ckt512m", n_sinks=512, die_edge=800.0, seed=14,
               n_blockages=4),
    DesignSpec("ckt4096", n_sinks=4096, die_edge=2240.0, seed=17),
    DesignSpec("ckt16384", n_sinks=16384, die_edge=4480.0, seed=19),
)


def benchmark_suite() -> tuple[DesignSpec, ...]:
    """The standard six-design suite used by all experiments."""
    return _SUITE


def spec_by_name(name: str) -> DesignSpec:
    """Look up a benchmark spec (standard suite or macro variants) by name."""
    for spec in _SUITE + _EXTRA:
        if spec.name == name:
            return spec
    raise KeyError(f"no benchmark named {name!r}; "
                   f"valid: {[s.name for s in _SUITE + _EXTRA]}")
