"""Rectilinear Steiner tree construction.

Signal (aggressor) nets and clock leaf-level connections are routed as
rectilinear Steiner trees.  The constructor is the classic practical
pipeline:

1. Prim's MST over the terminals under Manhattan distance (exact MST,
   O(n^2) which is fine at net fan-outs).
2. Each MST edge is realised as an L-shaped route; the bend orientation
   is chosen greedily to maximise overlap with already-placed segments
   (a one-pass Steinerisation that recovers most of the easy sharing).
3. Overlapping collinear segments are merged so total wirelength counts
   shared trunks once.

The result is within the usual few percent of an optimal RSMT for the
fan-outs that matter here, and — more importantly for this library —
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom.point import Point
from repro.geom.segment import Segment, l_route


@dataclass
class SteinerTree:
    """A routed rectilinear tree.

    Attributes
    ----------
    root:
        The driver terminal.
    terminals:
        All terminals including the root.
    segments:
        The wire segments realising the tree (merged, non-redundant).
    """

    root: Point
    terminals: tuple[Point, ...]
    segments: list[Segment] = field(default_factory=list)

    @property
    def wirelength(self) -> float:
        return sum(seg.length for seg in self.segments)


def _mst_edges(terminals: list[Point]) -> list[tuple[int, int]]:
    """Prim's MST over Manhattan distance; returns (parent, child) index pairs."""
    n = len(terminals)
    in_tree = [False] * n
    best_dist = [float("inf")] * n
    best_parent = [0] * n
    in_tree[0] = True
    for j in range(1, n):
        best_dist[j] = terminals[0].manhattan_to(terminals[j])
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        # Pick the closest out-of-tree terminal (ties broken by index for
        # determinism).
        pick = -1
        pick_dist = float("inf")
        for j in range(n):
            if not in_tree[j] and best_dist[j] < pick_dist:
                pick, pick_dist = j, best_dist[j]
        edges.append((best_parent[pick], pick))
        in_tree[pick] = True
        for j in range(n):
            if not in_tree[j]:
                d = terminals[pick].manhattan_to(terminals[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_parent[j] = pick
    return edges


def _overlap_score(candidate: list[Segment], placed: list[Segment]) -> float:
    """Total collinear overlap between a candidate route and placed wires."""
    score = 0.0
    for seg in candidate:
        for other in placed:
            if seg.horizontal == other.horizontal and seg.track_coord == other.track_coord:
                score += seg.overlap_with(other)
    return score


def _merge_collinear(segments: list[Segment]) -> list[Segment]:
    """Merge overlapping/abutting collinear segments on the same track."""
    by_track: dict[tuple[bool, float], list[Segment]] = {}
    for seg in segments:
        if seg.is_point:
            continue
        by_track.setdefault((seg.horizontal, seg.track_coord), []).append(seg)
    merged: list[Segment] = []
    for (horizontal, coord), group in sorted(by_track.items()):
        intervals = sorted((s.lo, s.hi) for s in group)
        cur_lo, cur_hi = intervals[0]
        spans = []
        for lo, hi in intervals[1:]:
            if lo <= cur_hi:
                cur_hi = max(cur_hi, hi)
            else:
                spans.append((cur_lo, cur_hi))
                cur_lo, cur_hi = lo, hi
        spans.append((cur_lo, cur_hi))
        for lo, hi in spans:
            if horizontal:
                merged.append(Segment(Point(lo, coord), Point(hi, coord)))
            else:
                merged.append(Segment(Point(coord, lo), Point(coord, hi)))
    return merged


def build_steiner_tree(root: Point, sinks: list[Point]) -> SteinerTree:
    """Build a rectilinear Steiner tree from ``root`` to ``sinks``.

    Duplicate terminals are tolerated; a single-terminal net yields an
    empty segment list.
    """
    terminals = [root] + [p for p in sinks if p != root]
    # De-duplicate while preserving order (root stays first).
    seen: set[Point] = set()
    unique: list[Point] = []
    for p in terminals:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    tree = SteinerTree(root=root, terminals=tuple(unique))
    if len(unique) < 2:
        return tree

    placed: list[Segment] = []
    for parent_idx, child_idx in _mst_edges(unique):
        a, b = unique[parent_idx], unique[child_idx]
        route_h = l_route(a, b, horizontal_first=True)
        route_v = l_route(a, b, horizontal_first=False)
        if _overlap_score(route_v, placed) > _overlap_score(route_h, placed):
            placed.extend(route_v)
        else:
            placed.extend(route_h)
    tree.segments = _merge_collinear(placed)
    return tree
