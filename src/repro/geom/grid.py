"""Routing grid: maps continuous coordinates to per-layer track indices.

Each metal layer carries equally spaced routing tracks at its pitch,
running in its preferred direction across the die.  The track router
(:mod:`repro.route`) assigns every wire segment to a track index; the
grid owns the coordinate <-> index mapping so router, extractor and
benchmark generator all agree on geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.rect import Rect
from repro.tech.layers import MetalLayer


@dataclass(frozen=True)
class RoutingGrid:
    """Track geometry for one die.

    Attributes
    ----------
    die:
        The die bounding box (um).
    """

    die: Rect

    def num_tracks(self, layer: MetalLayer) -> int:
        """Number of routing tracks ``layer`` provides across the die."""
        extent = self.die.height if layer.direction == "H" else self.die.width
        return max(1, int(extent / layer.pitch))

    def track_index(self, layer: MetalLayer, coord: float) -> int:
        """Nearest track index for a perpendicular coordinate, clamped to the die."""
        origin = self.die.ylo if layer.direction == "H" else self.die.xlo
        idx = int(round((coord - origin) / layer.pitch))
        return min(max(idx, 0), self.num_tracks(layer) - 1)

    def track_coord(self, layer: MetalLayer, index: int) -> float:
        """Perpendicular coordinate of track ``index`` on ``layer``."""
        if not 0 <= index < self.num_tracks(layer):
            raise IndexError(
                f"track {index} out of range for {layer.name} "
                f"({self.num_tracks(layer)} tracks)")
        origin = self.die.ylo if layer.direction == "H" else self.die.xlo
        return origin + index * layer.pitch

    def snap(self, layer: MetalLayer, coord: float) -> float:
        """Snap a perpendicular coordinate onto the nearest track."""
        return self.track_coord(layer, self.track_index(layer, coord))

    def track_distance(self, layer: MetalLayer, idx_a: int, idx_b: int) -> float:
        """Center-to-center distance (um) between two tracks on ``layer``."""
        return abs(idx_a - idx_b) * layer.pitch

    def edge_spacing(self, layer: MetalLayer, idx_a: int, width_a: float,
                     idx_b: int, width_b: float) -> float:
        """Edge-to-edge spacing between wires of given widths on two tracks."""
        if idx_a == idx_b:
            return 0.0
        return self.track_distance(layer, idx_a, idx_b) - (width_a + width_b) / 2.0
