"""Axis-aligned rectangles (um)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle with ``xlo <= xhi``, ``ylo <= yhi``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(
                f"degenerate rect: ({self.xlo},{self.ylo})-({self.xhi},{self.yhi})")

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def intersects(self, other: "Rect") -> bool:
        """True if this rect and ``other`` overlap or touch."""
        return not (other.xlo > self.xhi or other.xhi < self.xlo
                    or other.ylo > self.yhi or other.yhi < self.ylo)

    def expanded(self, margin: float) -> "Rect":
        """This rect grown by ``margin`` on every side (may be negative)."""
        return Rect(self.xlo - margin, self.ylo - margin,
                    self.xhi + margin, self.yhi + margin)

    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants: SW, SE, NW, NE."""
        c = self.center
        return (
            Rect(self.xlo, self.ylo, c.x, c.y),
            Rect(c.x, self.ylo, self.xhi, c.y),
            Rect(self.xlo, c.y, c.x, self.yhi),
            Rect(c.x, c.y, self.xhi, self.yhi),
        )
