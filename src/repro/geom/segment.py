"""Manhattan (axis-parallel) wire segments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point


@dataclass(frozen=True)
class Segment:
    """An axis-parallel segment from ``a`` to ``b`` (um).

    Zero-length segments are allowed (they arise from snapping) and are
    treated as horizontal.
    """

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise ValueError(f"segment must be axis-parallel: {self.a} -> {self.b}")

    @property
    def horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def length(self) -> float:
        return self.a.manhattan_to(self.b)

    @property
    def is_point(self) -> bool:
        """True for the degenerate zero-length segment (a == b)."""
        return self.a == self.b

    @property
    def lo(self) -> float:
        """Lower coordinate along the running axis."""
        return min(self.a.x, self.b.x) if self.horizontal else min(self.a.y, self.b.y)

    @property
    def hi(self) -> float:
        """Upper coordinate along the running axis."""
        return max(self.a.x, self.b.x) if self.horizontal else max(self.a.y, self.b.y)

    @property
    def track_coord(self) -> float:
        """The fixed coordinate perpendicular to the running axis."""
        return self.a.y if self.horizontal else self.a.x

    @property
    def midpoint(self) -> Point:
        return self.a.midpoint(self.b)

    def overlap_with(self, other: "Segment") -> float:
        """Parallel-run length shared with ``other`` (0 if orientations differ)."""
        if self.horizontal != other.horizontal:
            return 0.0
        return max(0.0, min(self.hi, other.hi) - max(self.lo, other.lo))

    def point_at(self, fraction: float) -> Point:
        """Point at ``fraction`` in [0, 1] along the segment from ``a``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return Point(self.a.x + (self.b.x - self.a.x) * fraction,
                     self.a.y + (self.b.y - self.a.y) * fraction)

    def split_at(self, p: Point) -> tuple["Segment", "Segment"]:
        """Split into two segments at an on-segment point ``p``."""
        if self.horizontal:
            on = p.y == self.a.y and self.lo <= p.x <= self.hi
        else:
            on = p.x == self.a.x and self.lo <= p.y <= self.hi
        if not on:
            raise ValueError(f"point {p} is not on segment {self.a}->{self.b}")
        return Segment(self.a, p), Segment(p, self.b)


def l_route(src: Point, dst: Point, horizontal_first: bool = True) -> list[Segment]:
    """The one- or two-segment L-shaped Manhattan route from src to dst.

    Degenerate legs (zero length) are dropped; a zero-distance route
    returns an empty list.
    """
    if src == dst:
        return []
    if src.x == dst.x or src.y == dst.y:
        return [Segment(src, dst)]
    bend = Point(dst.x, src.y) if horizontal_first else Point(src.x, dst.y)
    return [Segment(src, bend), Segment(bend, dst)]
