"""Obstacle-avoiding Manhattan routing.

Hard macros (RAMs, IP blocks) block the routing layers the clock uses;
wires must detour around them.  The router here is the practical
pattern-route: try the two L-shapes, and for a leg crossing a macro,
bypass it along the nearer macro edge (a three-bend detour), recursing
on the pieces.  This handles the convex, sparsely-placed blockages of
the benchmark generator; it is not a maze router (no routing through
mazes of overlapping macros — the generator keeps macros disjoint).
"""

from __future__ import annotations

from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.segment import Segment, l_route

#: Clearance kept between a wire centerline and a macro edge, um.
CLEARANCE: float = 0.5


def segment_blocked(seg: Segment, blockage: Rect,
                    clearance: float = CLEARANCE) -> bool:
    """True if ``seg`` passes through ``blockage`` (with clearance)."""
    if seg.is_point:
        return blockage.expanded(clearance).contains(seg.a)
    grown = blockage.expanded(clearance)
    if seg.horizontal:
        y = seg.track_coord
        return grown.ylo < y < grown.yhi and \
            seg.lo < grown.xhi and seg.hi > grown.xlo
    x = seg.track_coord
    return grown.xlo < x < grown.xhi and \
        seg.lo < grown.yhi and seg.hi > grown.ylo


def _first_blocker(seg: Segment, blockages: list[Rect]) -> Rect | None:
    for blockage in blockages:
        if segment_blocked(seg, blockage):
            return blockage
    return None


def _bypass_leg(seg: Segment, blockage: Rect, die: Rect) -> list[Segment]:
    """Replace one blocked leg with a three-bend detour around ``blockage``."""
    grown = blockage.expanded(2.0 * CLEARANCE)
    if seg.horizontal:
        y = seg.track_coord
        below = grown.ylo
        above = grown.yhi
        # Pick the nearer macro edge that stays on the die.
        candidates = sorted((abs(y - c), c) for c in (below, above)
                            if die.ylo <= c <= die.yhi)
        if not candidates:
            return [seg]  # nowhere to go; give up (flagged by caller)
        y_by = candidates[0][1]
        a, b = seg.a, seg.b
        return [
            Segment(a, Point(a.x, y_by)),
            Segment(Point(a.x, y_by), Point(b.x, y_by)),
            Segment(Point(b.x, y_by), b),
        ]
    x = seg.track_coord
    left = grown.xlo
    right = grown.xhi
    candidates = sorted((abs(x - c), c) for c in (left, right)
                        if die.xlo <= c <= die.xhi)
    if not candidates:
        return [seg]
    x_by = candidates[0][1]
    a, b = seg.a, seg.b
    return [
        Segment(a, Point(x_by, a.y)),
        Segment(Point(x_by, a.y), Point(x_by, b.y)),
        Segment(Point(x_by, b.y), b),
    ]


def _clear_route(legs: list[Segment], blockages: list[Rect], die: Rect,
                 depth: int) -> list[Segment] | None:
    """Recursively bypass blockers; None when the depth budget runs out."""
    if depth <= 0:
        return None
    out: list[Segment] = []
    for leg in legs:
        if leg.is_point:
            continue
        blocker = _first_blocker(leg, blockages)
        if blocker is None:
            out.append(leg)
            continue
        cleared = None
        detour = _bypass_leg(leg, blocker, die)
        if detour != [leg]:
            cleared = _clear_route(detour, blockages, die, depth - 1)
        if cleared is None:
            # Bypass failed.  A leg that merely grazes the clearance
            # ring (endpoints near a macro edge) may hug the macro; only
            # crossing the macro proper is fatal.
            if segment_blocked(leg, blocker, clearance=0.0):
                return None
            out.append(leg)
            continue
        out.extend(cleared)
    return out


def route_avoiding(src: Point, dst: Point, blockages: list[Rect],
                   die: Rect, max_depth: int = 6) -> list[Segment]:
    """Manhattan route from src to dst around ``blockages``.

    Tries both L orientations and returns the shorter cleared route.
    Raises RuntimeError when no route is found within the detour depth
    (the generator's disjoint-macro guarantee makes this unreachable in
    practice; real mazes need a real maze router).
    """
    if not blockages:
        return l_route(src, dst)
    best: list[Segment] | None = None
    for horizontal_first in (True, False):
        legs = l_route(src, dst, horizontal_first=horizontal_first)
        cleared = _clear_route(legs, blockages, die, max_depth)
        if cleared is None:
            continue
        if best is None or _length(cleared) < _length(best):
            best = cleared
    if best is None:
        raise RuntimeError(f"no blockage-avoiding route from {src} to {dst}")
    return best


def _length(legs: list[Segment]) -> float:
    return sum(leg.length for leg in legs)
