"""Geometry substrate: points, rectangles, Manhattan segments, Steiner trees.

Substrate S2 in DESIGN.md.  All coordinates are in micrometers.
"""

from repro.geom.point import Point, manhattan
from repro.geom.rect import Rect
from repro.geom.segment import Segment
from repro.geom.steiner import SteinerTree, build_steiner_tree
from repro.geom.grid import RoutingGrid

__all__ = [
    "Point",
    "manhattan",
    "Rect",
    "Segment",
    "SteinerTree",
    "build_steiner_tree",
    "RoutingGrid",
]
