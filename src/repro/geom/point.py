"""2-D points in micrometers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point (um)."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """This point with both coordinates multiplied by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def snapped(self, step: float) -> "Point":
        """This point snapped to the nearest multiple of ``step`` in x and y."""
        if step <= 0.0:
            raise ValueError("snap step must be positive")
        return Point(round(self.x / step) * step, round(self.y / step) * step)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan (L1) distance between two points."""
    return a.manhattan_to(b)


def bounding_center(points) -> Point:
    """Center of the bounding box of a non-empty iterable of points."""
    pts = list(points)
    if not pts:
        raise ValueError("cannot take bounding center of no points")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Point((min(xs) + max(xs)) / 2.0, (min(ys) + max(ys)) / 2.0)
