"""Module-level call graph over a Python package, built from the AST.

:func:`build_program` parses every module under a package root and
produces a :class:`ProgramModel`: functions and classes by qualified
name, per-module import bindings, module-level globals, and — the part
everything downstream consumes — one :class:`CallSite` per call
expression, resolved as far as a purely syntactic analysis can take it:

* plain names through the module's ``import`` / ``from-import``
  bindings, module-level ``def``/``class`` statements, and builtins;
* dotted names through module aliases (``import numpy as np`` makes
  ``np.random.rand`` resolve to ``numpy.random.rand``);
* re-exports (``from repro.verify import run_checks`` where
  ``repro.verify`` itself imported the name) by chasing the binding
  chain through ``__init__`` modules;
* ``self.method()`` to the enclosing class, and ``x.method()`` to
  ``Cls.method`` when ``x`` was assigned from a resolved ``Cls(...)``
  call in the same scope (one-level local type inference);
* bare function references passed as call arguments (``pool.submit(fn,
  ...)``) become edges too — a worker entrypoint handed to an executor
  is reachable even though it is never "called" syntactically.

Method calls on values whose type the analysis cannot see
(``ctx.store.load(...)``) stay unresolved: the effect inference in
:mod:`repro.analysis.effects` is deliberately *under*-approximate and
precise rather than exhaustively conservative, so every finding it
raises is worth reading.  The documented limitation lives in
``docs/VERIFY.md``.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class CallSite:
    """One call expression inside one function."""

    caller: str
    lineno: int
    #: Qualified name of a function/method defined inside the program,
    #: when resolution succeeded.
    target: Optional[str] = None
    #: Dotted name of an external callee ("time.perf_counter",
    #: "builtins.id") when the call leaves the program.
    external: Optional[str] = None
    #: Caller parameter names passed positionally (None for other exprs).
    pos_args: tuple[Optional[str], ...] = ()
    #: Caller parameter names passed by keyword.
    kw_args: dict[str, Optional[str]] = field(default_factory=dict)
    #: For ``p.method(...)`` where ``p`` is a caller parameter: (p, method).
    receiver_param: Optional[str] = None
    receiver_method: Optional[str] = None
    #: True when the edge is a bare function reference passed as an
    #: argument rather than a direct call.
    is_reference: bool = False


@dataclass
class FunctionInfo:
    """One function or method defined in the program."""

    qualname: str
    module: str
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    lineno: int
    params: tuple[str, ...]
    class_qualname: Optional[str] = None
    is_property: bool = False
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class defined in the program."""

    qualname: str
    module: str
    name: str
    lineno: int
    is_dataclass: bool = False
    #: Dataclass field names in declaration order (AnnAssign at class
    #: body level, minus ClassVar annotations).
    fields: tuple[str, ...] = ()
    #: field name -> annotation source text (``ast.unparse``d).
    field_annotations: dict[str, str] = field(default_factory=dict)
    #: Base-class dotted names exactly as written (``enum.Enum``,
    #: ``Enum``); resolve through the module's imports to classify.
    bases: tuple[str, ...] = ()
    #: method name -> method qualname
    methods: dict[str, str] = field(default_factory=dict)
    properties: frozenset[str] = frozenset()


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: Path
    source_lines: tuple[str, ...]
    #: local binding -> dotted target ("np" -> "numpy",
    #: "run_checks" -> "repro.verify.run_checks").
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level ``Alias = Name`` assignments whose value is a plain
    #: (dotted) name — type aliases like ``DesignRef = str``.
    aliases: dict[str, str] = field(default_factory=dict)
    #: Names assigned at module level (candidate mutable globals).
    global_names: frozenset[str] = frozenset()
    functions: list[str] = field(default_factory=list)
    classes: list[str] = field(default_factory=list)


@dataclass
class ProgramModel:
    """Everything the effect inference needs about one package."""

    package: str
    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Lazily filled caches (reachability, effects, param reads).
    caches: dict[str, object] = field(default_factory=dict)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        """The module a qualified function/class name lives in."""
        info = self.functions.get(qualname) or self.classes.get(qualname)
        if info is None:
            return None
        return self.modules.get(info.module)

    def callees(self, qualname: str) -> Iterator[CallSite]:
        """All resolved in-program call sites of one function."""
        fn = self.functions.get(qualname)
        if fn is None:
            return
        for site in fn.calls:
            if site.target is not None:
                yield site

    def resolve_export(self, dotted: str) -> Optional[str]:
        """Chase re-export bindings until ``dotted`` names a definition.

        ``repro.verify.run_checks`` resolves to
        ``repro.verify.registry.run_checks`` when the ``__init__``
        module merely re-exported the name.
        """
        seen: set[str] = set()
        while dotted not in self.functions and dotted not in self.classes:
            if dotted in seen:
                return None
            seen.add(dotted)
            module, attr = _split_module_attr(dotted, self.modules)
            if module is None or attr is None:
                return None
            binding = self.modules[module].imports.get(attr)
            if binding is None:
                return None
            dotted = binding
        return dotted


def _split_module_attr(dotted: str, modules: dict[str, ModuleInfo]
                       ) -> tuple[Optional[str], Optional[str]]:
    """Split ``a.b.c.d`` into (longest known module prefix, remainder)."""
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:cut])
        if prefix in modules:
            return prefix, ".".join(parts[cut:])
    return None, None


def _dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_name(root: Path, package: str, path: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = [package, *rel.parts]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _decorator_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef]) -> list[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted_name(target)
        if dotted is not None:
            names.append(dotted)
    return names


def _param_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
                 ) -> tuple[str, ...]:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    names = [a.arg for a in ordered]
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


def _class_fields(node: ast.ClassDef) -> tuple[tuple[str, ...],
                                               dict[str, str]]:
    fields = []
    annotations: dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(stmt.target.id)
            annotations[stmt.target.id] = annotation
    return tuple(fields), annotations


def _class_bases(node: ast.ClassDef) -> tuple[str, ...]:
    bases = []
    for base in node.bases:
        dotted = _dotted_name(base)
        if dotted is not None:
            bases.append(dotted)
    return tuple(bases)


def _import_bindings(stmt: Union[ast.Import, ast.ImportFrom],
                     module: ModuleInfo) -> dict[str, str]:
    """local name -> dotted target for one import statement."""
    out: dict[str, str] = {}
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            out[local] = target
        return out
    if stmt.level:
        base_parts = module.name.split(".")
        # Plain modules drop their own name; packages (__init__)
        # already are the containing package.
        if not module.path.name == "__init__.py":
            base_parts = base_parts[:-1]
        if stmt.level > 1:
            base_parts = base_parts[:-(stmt.level - 1)]
        base = ".".join(base_parts)
        source = f"{base}.{stmt.module}" if stmt.module else base
    else:
        source = stmt.module or ""
    for alias in stmt.names:
        if alias.name != "*":
            out[alias.asname or alias.name] = f"{source}.{alias.name}"
    return out


class _ModuleCollector(ast.NodeVisitor):
    """First pass: definitions, imports and module-level globals."""

    def __init__(self, program: ProgramModel, module: ModuleInfo) -> None:
        self.program = program
        self.module = module
        self._class_stack: list[ClassInfo] = []
        self._globals: set[str] = set()

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.module.imports.update(_import_bindings(node, self.module))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.module.imports.update(_import_bindings(node, self.module))

    # -- definitions ---------------------------------------------------------

    def _qualify(self, name: str) -> str:
        if self._class_stack:
            return f"{self._class_stack[-1].qualname}.{name}"
        return f"{self.module.name}.{name}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualify(node.name)
        decorators = _decorator_names(node)
        fields, annotations = _class_fields(node)
        info = ClassInfo(
            qualname=qualname, module=self.module.name, name=node.name,
            lineno=node.lineno,
            is_dataclass=any(d.split(".")[-1] == "dataclass"
                             for d in decorators),
            fields=fields, field_annotations=annotations,
            bases=_class_bases(node))
        self.program.classes[qualname] = info
        self.module.classes.append(qualname)
        self._class_stack.append(info)
        properties = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(d.split(".")[-1] in ("property", "cached_property")
                       for d in _decorator_names(stmt)):
                    properties.add(stmt.name)
        info.properties = frozenset(properties)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: Union[ast.FunctionDef,
                                          ast.AsyncFunctionDef]) -> None:
        qualname = self._qualify(node.name)
        cls = self._class_stack[-1] if self._class_stack else None
        info = FunctionInfo(
            qualname=qualname, module=self.module.name, name=node.name,
            node=node, lineno=node.lineno, params=_param_names(node),
            class_qualname=cls.qualname if cls else None,
            is_property=cls is not None and node.name in cls.properties)
        self.program.functions[qualname] = info
        self.module.functions.append(qualname)
        if cls is not None:
            cls.methods[node.name] = qualname
        # Do not recurse: nested defs are analyzed as part of their
        # enclosing function's body (closure effects stay attributed to
        # the function that creates and runs them).

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- module-level globals ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._class_stack:
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        self._globals.add(name_node.id)
            # Type aliases: module-level ``Alias = <dotted name>``.
            if len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                dotted = _dotted_name(node.value)
                if dotted is not None:
                    self.module.aliases[node.targets[0].id] = dotted

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._class_stack and isinstance(node.target, ast.Name):
            self._globals.add(node.target.id)


def _local_store_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
                       ) -> set[str]:
    """Names bound inside the function body (stores, loops, withs)."""
    names: set[str] = set(_param_names(node))
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif isinstance(sub, (ast.Global, ast.Nonlocal)):
            names.difference_update(sub.names)
    return names


class _CallCollector(ast.NodeVisitor):
    """Second pass: call sites of one function, resolved."""

    def __init__(self, program: ProgramModel, module: ModuleInfo,
                 fn: FunctionInfo) -> None:
        self.program = program
        self.module = module
        self.fn = fn
        self.locals = _local_store_names(fn.node)
        #: local name -> class qualname, for x = Cls(...) inference.
        self.local_types: dict[str, str] = {}
        #: Function-local import bindings (``from x import y`` inside
        #: the body).  Worker entries defer heavy imports to the
        #: function body; without these the worker closure is blind.
        self.fn_imports: dict[str, str] = {}
        for sub in ast.walk(fn.node):
            if isinstance(sub, (ast.Import, ast.ImportFrom)):
                self.fn_imports.update(_import_bindings(sub, module))

    def resolve_name(self, dotted: str) -> Optional[str]:
        """Expand the first segment through imports/module scope."""
        first, _, rest = dotted.partition(".")
        if first in self.locals:
            return None  # shadowed by a local/param we cannot type
        binding = self.fn_imports.get(first) or self.module.imports.get(first)
        if binding is not None:
            return f"{binding}.{rest}" if rest else binding
        module_qual = f"{self.module.name}.{first}"
        if (module_qual in self.program.functions
                or module_qual in self.program.classes
                or first in self.module.global_names):
            return f"{module_qual}.{rest}" if rest else module_qual
        if first in _BUILTIN_NAMES and first not in self.locals:
            return f"builtins.{dotted}"
        return None

    def _target_for(self, expanded: str) -> Optional[str]:
        """In-program function for an expanded dotted name, chasing
        re-exports and class constructors."""
        resolved = self.program.resolve_export(expanded)
        if resolved is None:
            return None
        if resolved in self.program.functions:
            return resolved
        cls = self.program.classes.get(resolved)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def _classify(self, func: ast.expr) -> CallSite:
        site = CallSite(caller=self.fn.qualname, lineno=func.lineno)
        # self.method() / cls.method()
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and self.fn.class_qualname is not None):
            cls = self.program.classes[self.fn.class_qualname]
            site.target = cls.methods.get(func.attr)
            return site
        # x.method() where x = Cls(...) earlier in this function.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.local_types):
            cls = self.program.classes.get(self.local_types[func.value.id])
            if cls is not None and func.attr in cls.methods:
                site.target = cls.methods[func.attr]
                return site
        # p.method() where p is a parameter: recorded for the
        # cache-key analysis (the params-class methods get resolved
        # there, where the declared type is known).
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.fn.params):
            site.receiver_param = func.value.id
            site.receiver_method = func.attr
        dotted = _dotted_name(func)
        if dotted is None:
            return site
        expanded = self.resolve_name(dotted)
        if expanded is None:
            return site
        target = self._target_for(expanded)
        if target is not None:
            site.target = target
        else:
            site.external = expanded
        return site

    def visit_Call(self, node: ast.Call) -> None:
        site = self._classify(node.func)
        site.lineno = node.lineno
        site.pos_args = tuple(
            arg.id if isinstance(arg, ast.Name)
            and arg.id in self.fn.params else None
            for arg in node.args if not isinstance(arg, ast.Starred))
        site.kw_args = {
            kw.arg: (kw.value.id if isinstance(kw.value, ast.Name)
                     and kw.value.id in self.fn.params else None)
            for kw in node.keywords if kw.arg is not None}
        self.fn.calls.append(site)
        # Bare references to program functions passed as arguments are
        # edges too (executor submit / map, callbacks, initializers).
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            dotted = _dotted_name(arg)
            if dotted is None:
                continue
            expanded = self.resolve_name(dotted)
            if expanded is None:
                continue
            target = self._target_for(expanded)
            if target is not None:
                self.fn.calls.append(CallSite(
                    caller=self.fn.qualname, lineno=node.lineno,
                    target=target, is_reference=True))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # One-level local type inference: x = Cls(...)
        if (isinstance(node.value, ast.Call)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            dotted = _dotted_name(node.value.func)
            if dotted is not None:
                expanded = self.resolve_name(dotted)
                if expanded is not None:
                    resolved = self.program.resolve_export(expanded)
                    if resolved in self.program.classes:
                        self.local_types[node.targets[0].id] = resolved
        self.generic_visit(node)


def build_program(root: Union[str, Path],
                  package: Optional[str] = None) -> ProgramModel:
    """Parse every module under ``root`` into a :class:`ProgramModel`.

    ``root`` is a package directory (one containing ``__init__.py``);
    ``package`` defaults to the directory's own name.
    """
    root = Path(root).resolve()
    if not root.is_dir():
        raise ValueError(f"not a package directory: {root}")
    package = package or root.name
    program = ProgramModel(package=package, root=root)

    paths = sorted(root.rglob("*.py"))
    for path in paths:
        name = _module_name(root, package, path)
        source = path.read_text(encoding="utf-8")
        module = ModuleInfo(name=name, path=path,
                            source_lines=tuple(source.splitlines()))
        program.modules[name] = module
        tree = ast.parse(source, filename=str(path))
        collector = _ModuleCollector(program, module)
        collector.visit(tree)
        module.global_names = frozenset(collector._globals)

    for module in program.modules.values():
        for qualname in module.functions:
            fn = program.functions[qualname]
            _CallCollector(program, module, fn).visit(fn.node)
    return program
