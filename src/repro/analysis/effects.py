"""Per-function effect inference and fixpoint propagation.

A function's *direct* effects are syntactic facts about its own body:
it reads ``os.environ``, draws from an unseeded RNG, looks at the wall
clock, mutates module-level or closure state, lets ``set`` iteration
order escape, or keys on object identity (``id``/``hash``).  The
*transitive* effects of a declared root are the union of the direct
effects of everything reachable from it over the
:class:`~repro.analysis.callgraph.ProgramModel` call graph — computed
here as a breadth-first closure with witness paths, which is the
fixpoint of "effects(f) = direct(f) ∪ ⋃ effects(callees(f))" for the
acyclic-and-cyclic cases alike (a cycle adds no new origins once every
member has been visited).

The second half of the module is the *parameter attribute-read*
fixpoint the cache-key rules consume: for every function and every
parameter, which attribute names flow out of the parameter — including
reads that happen inside other functions the parameter was passed to,
and inside methods/properties of the parameter's own (declared)
dataclass type.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.analysis.callgraph import (CallSite, FunctionInfo, ModuleInfo,
                                      ProgramModel, _dotted_name)

#: Predicate over statements used by the post-dominance walk.
SatPredicate = Callable[[ast.stmt], bool]


class Effect(enum.Enum):
    """One kind of impurity the analyzer tracks."""

    ENV_READ = "env-read"
    ENV_WRITE = "env-write"
    RANDOM_SEEDLESS = "random-seedless"
    WALL_CLOCK = "wall-clock"
    GLOBAL_MUTATION = "global-mutation"
    CLOSURE_MUTATION = "closure-mutation"
    SET_ORDER = "set-order"
    OBJECT_IDENTITY = "object-identity"
    MUTABLE_GLOBAL_READ = "mutable-global-read"


@dataclass(frozen=True)
class EffectOrigin:
    """One direct occurrence of one effect in one function."""

    effect: Effect
    function: str
    module: str
    lineno: int
    #: What exactly: the API called, the env var read, the global name
    #: mutated — whatever makes the diagnostic actionable.
    detail: str
    #: For ENV_READ/ENV_WRITE: the literal variable name, when static.
    env_var: Optional[str] = None


#: Module-level RNG entry points that consume interpreter-global state.
_RANDOM_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

_NUMPY_RANDOM_GLOBAL_FNS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "laplace", "logistic",
    "lognormal", "multinomial", "multivariate_normal", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_integers", "random_sample", "ranf", "rayleigh", "sample",
    "seed", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "uniform",
})

#: Other inherently nondeterministic externals.
_ENTROPY_APIS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.choice",
})

_WALL_CLOCK_APIS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.localtime",
    "time.gmtime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_IDENTITY_APIS = frozenset({"builtins.id", "builtins.hash"})

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "reverse", "setdefault", "sort", "update",
})

#: Calls whose consumption of an iterable is order-insensitive.
_ORDER_INSENSITIVE_SINKS = frozenset({
    "builtins.sorted", "builtins.sum", "builtins.min", "builtins.max",
    "builtins.len", "builtins.any", "builtins.all", "builtins.set",
    "builtins.frozenset",
})

_SET_PRODUCING_METHODS = frozenset({
    "difference", "intersection", "symmetric_difference", "union",
})


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _DirectEffects(ast.NodeVisitor):
    """Collect one function's direct effect origins."""

    def __init__(self, program: ProgramModel, fn: FunctionInfo,
                 resolve: Callable[[str], Optional[str]],
                 local_names: set[str],
                 module_globals: frozenset[str],
                 env_name_constants: dict[str, str]) -> None:
        self.program = program
        self.fn = fn
        self.resolve = resolve
        self.locals = local_names
        self.module_globals = module_globals
        #: module-level ``X = "SOME_ENV"`` string constants, so
        #: ``os.environ.get(CACHE_DIR_ENV)`` still yields a var name.
        self.env_name_constants = env_name_constants
        self.origins: list[EffectOrigin] = []
        self.declared_global: set[str] = set()
        self.declared_nonlocal: set[str] = set()
        self.set_valued: set[str] = set()
        self._ordered_sinks: set[int] = set()
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Global):
                self.declared_global.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                self.declared_nonlocal.update(sub.names)

    def _emit(self, effect: Effect, lineno: int, detail: str,
              env_var: Optional[str] = None) -> None:
        self.origins.append(EffectOrigin(
            effect=effect, function=self.fn.qualname,
            module=self.fn.module, lineno=lineno, detail=detail,
            env_var=env_var))

    # -- environment ---------------------------------------------------------

    def _env_var_of(self, node: Optional[ast.expr]) -> Optional[str]:
        literal = _literal_str(node)
        if literal is not None:
            return literal
        if isinstance(node, ast.Name):
            return self.env_name_constants.get(node.id)
        return None

    def _is_environ(self, node: ast.expr) -> bool:
        dotted = _dotted_name(node)
        return dotted is not None and self.resolve(dotted) == "os.environ"

    # -- call classification -------------------------------------------------

    def _check_call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        external = self.resolve(dotted) if dotted is not None else None
        if external is None:
            # Mutating method on a module-level global: _CACHE.update(...)
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in _MUTATING_METHODS):
                base = node.func.value.id
                if base in self.module_globals and base not in self.locals:
                    self._emit(Effect.GLOBAL_MUTATION, node.lineno,
                               f"{base}.{node.func.attr}(...) mutates "
                               f"module-level state")
            return

        if external == "os.getenv":
            var = self._env_var_of(node.args[0] if node.args else None)
            self._emit(Effect.ENV_READ, node.lineno, "os.getenv", var)
            return
        if external.startswith("os.environ."):
            method = external.rsplit(".", 1)[1]
            var = self._env_var_of(node.args[0] if node.args else None)
            if method in ("get", "keys", "items", "values", "copy",
                          "__contains__"):
                self._emit(Effect.ENV_READ, node.lineno, external, var)
            else:  # pop / setdefault / update / clear
                self._emit(Effect.ENV_WRITE, node.lineno, external, var)
            return
        if external in ("numpy.random.default_rng", "numpy.random.Generator",
                        "numpy.random.RandomState", "random.Random"):
            if not node.args and not node.keywords:
                self._emit(Effect.RANDOM_SEEDLESS, node.lineno,
                           f"{external}() without a seed")
            return
        if external.startswith("random.") \
                and external.rsplit(".", 1)[1] in _RANDOM_GLOBAL_FNS:
            self._emit(Effect.RANDOM_SEEDLESS, node.lineno,
                       f"{external} uses the interpreter-global RNG")
            return
        if external.startswith("numpy.random.") \
                and external.rsplit(".", 1)[1] in _NUMPY_RANDOM_GLOBAL_FNS:
            self._emit(Effect.RANDOM_SEEDLESS, node.lineno,
                       f"{external} uses numpy's global RNG")
            return
        if external in _ENTROPY_APIS:
            self._emit(Effect.RANDOM_SEEDLESS, node.lineno,
                       f"{external} draws OS entropy")
            return
        if external in _WALL_CLOCK_APIS:
            self._emit(Effect.WALL_CLOCK, node.lineno, external)
            return
        if external in _IDENTITY_APIS:
            self._emit(Effect.OBJECT_IDENTITY, node.lineno,
                       f"{external}() is interpreter/process dependent")
            return

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        # Remember order-insensitive consumption so a comprehension or
        # set expression directly inside sorted()/sum()/... stays legal.
        dotted = _dotted_name(node.func)
        external = self.resolve(dotted) if dotted is not None else None
        if external in _ORDER_INSENSITIVE_SINKS:
            for arg in node.args:
                self._ordered_sinks.add(id(arg))
        elif external in ("builtins.list", "builtins.tuple",
                          "builtins.enumerate"):
            for arg in node.args:
                if self._is_set_expr(arg):
                    self._emit(Effect.SET_ORDER, node.lineno,
                               f"{external.rsplit('.', 1)[1]}() over a set "
                               f"materialises hash order")
        self.generic_visit(node)

    # -- mutation ------------------------------------------------------------

    def _store_base(self, target: ast.expr) -> Optional[str]:
        """Base name of a subscript/attribute store target."""
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id
        return None

    def _check_store(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self._emit(Effect.GLOBAL_MUTATION, lineno,
                           f"assigns module-level '{target.id}' "
                           f"(declared global)")
            elif target.id in self.declared_nonlocal:
                self._emit(Effect.CLOSURE_MUTATION, lineno,
                           f"assigns enclosing-scope '{target.id}' "
                           f"(declared nonlocal)")
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            if isinstance(target, ast.Subscript) \
                    and self._is_environ(target.value):
                var = self._env_var_of(target.slice)
                self._emit(Effect.ENV_WRITE, lineno,
                           "os.environ[...] assignment", var)
                return
            base = self._store_base(target)
            if base is not None and base not in self.locals \
                    and base in self.module_globals:
                self._emit(Effect.GLOBAL_MUTATION, lineno,
                           f"stores into module-level '{base}'")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, lineno)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node.lineno)
        self._track_set_assignment(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                if self._is_environ(target.value):
                    self._emit(Effect.ENV_WRITE, node.lineno,
                               "del os.environ[...]",
                               self._env_var_of(target.slice))
                    continue
                base = self._store_base(target)
                if base is not None and base not in self.locals \
                        and base in self.module_globals:
                    self._emit(Effect.GLOBAL_MUTATION, node.lineno,
                               f"del on module-level '{base}'")
        self.generic_visit(node)

    # -- environment / mutable-global reads ----------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load) and self._is_environ(node.value):
            self._emit(Effect.ENV_READ, node.lineno, "os.environ[...]",
                       self._env_var_of(node.slice))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # "X" in os.environ
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)) \
                    and self._is_environ(comparator):
                self._emit(Effect.ENV_READ, node.lineno, "in os.environ",
                           self._env_var_of(node.left))
        self.generic_visit(node)

    # -- set iteration order -------------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_valued
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            external = self.resolve(dotted) if dotted is not None else None
            if external in ("builtins.set", "builtins.frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SET_PRODUCING_METHODS
                    and self._is_set_expr(node.func.value)):
                return True
        if isinstance(node, ast.BinOp) \
                and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                         ast.BitXor)):
            return self._is_set_expr(node.left) \
                or self._is_set_expr(node.right)
        return False

    def _track_set_assignment(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if self._is_set_expr(node.value):
                self.set_valued.add(node.targets[0].id)

    def _flag_set_iteration(self, iter_node: ast.expr, lineno: int) -> None:
        if id(iter_node) in self._ordered_sinks:
            return
        if self._is_set_expr(iter_node):
            self._emit(Effect.SET_ORDER, lineno,
                       "iteration order of a set escapes into results; "
                       "wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, node.lineno)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        if id(node) not in self._ordered_sinks:
            for gen in node.generators:
                self._flag_set_iteration(gen.iter, node.lineno)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set is fine; only *iterating* one is flagged.
        self.generic_visit(node)

    # -- mutable-global reads ------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) \
                and node.id not in self.locals \
                and node.id in self.module_globals \
                and (self.fn.module, node.id) in _mutated_globals_of(
                    self.program):
            self._emit(Effect.MUTABLE_GLOBAL_READ, node.lineno,
                       f"reads module-level '{node.id}', which is mutated "
                       f"elsewhere in the program")
        self.generic_visit(node)


def _mutated_globals_of(program: ProgramModel) -> set[tuple[str, str]]:
    """(module, name) pairs some function in the program mutates.

    Uses a two-pass scheme: the first direct-effect sweep records the
    mutation targets; the cached result then feeds
    ``MUTABLE_GLOBAL_READ`` detection in the second sweep.
    """
    cached = program.caches.get("mutated_globals")
    if cached is None:
        cached = set()
        for fn in program.functions.values():
            module = program.modules[fn.module]
            for sub in ast.walk(fn.node):
                if isinstance(sub, ast.Global):
                    cached.update((fn.module, n) for n in sub.names)
                elif isinstance(sub, (ast.Assign, ast.AugAssign,
                                      ast.AnnAssign, ast.Delete)):
                    targets = (sub.targets
                               if isinstance(sub, (ast.Assign, ast.Delete))
                               else [sub.target])
                    for target in targets:
                        while isinstance(target, (ast.Subscript,
                                                  ast.Attribute)):
                            target = target.value
                        if isinstance(target, ast.Name) \
                                and target.id in module.global_names \
                                and target.id not in _locals_of(fn):
                            cached.add((fn.module, target.id))
                elif (isinstance(sub, ast.Call)
                      and isinstance(sub.func, ast.Attribute)
                      and sub.func.attr in _MUTATING_METHODS
                      and isinstance(sub.func.value, ast.Name)
                      and sub.func.value.id in module.global_names
                      and sub.func.value.id not in _locals_of(fn)):
                    cached.add((fn.module, sub.func.value.id))
        program.caches["mutated_globals"] = cached
    return cached


def _locals_of(fn: FunctionInfo) -> set[str]:
    cached = getattr(fn, "_locals_cache", None)
    if cached is None:
        from repro.analysis.callgraph import _local_store_names
        cached = _local_store_names(fn.node)
        fn._locals_cache = cached  # type: ignore[attr-defined]
    return cached


def direct_effects(program: ProgramModel,
                   qualname: str) -> list[EffectOrigin]:
    """Direct effect origins of one function (memoised on the model)."""
    cache = program.caches.setdefault("direct_effects", {})
    if qualname not in cache:
        fn = program.functions[qualname]
        module = program.modules[fn.module]
        from repro.analysis.callgraph import _CallCollector
        resolver = _CallCollector(program, module, fn)

        def resolve(dotted: str) -> Optional[str]:
            expanded = resolver.resolve_name(dotted)
            if expanded is None:
                return None
            # Externals only: in-program names are edges, not effects.
            if program.resolve_export(expanded) is not None:
                return None
            return expanded

        env_constants = _env_name_constants(program, module)
        visitor = _DirectEffects(program, fn, resolve, _locals_of(fn),
                                 module.global_names, env_constants)
        visitor.visit(fn.node)
        cache[qualname] = visitor.origins
    return cache[qualname]


def _env_name_constants(program: ProgramModel,
                        module: ModuleInfo) -> dict[str, str]:
    """Module-level ``NAME = "STRING"`` constants (env-var indirection)."""
    cache = program.caches.setdefault("env_constants", {})
    if module.name not in cache:
        constants: dict[str, str] = {}
        try:
            tree = ast.parse("\n".join(module.source_lines))
        except SyntaxError:  # pragma: no cover - parsed once already
            tree = ast.Module(body=[], type_ignores=[])
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                value = _literal_str(stmt.value)
                if value is not None:
                    constants[stmt.targets[0].id] = value
        cache[module.name] = constants
    return cache[module.name]


@dataclass(frozen=True)
class TransitiveOrigin:
    """One direct origin plus the call path that reaches it from a root."""

    origin: EffectOrigin
    #: Qualified names from the root (inclusive) to the origin's
    #: function (inclusive).
    path: tuple[str, ...]


def reachable_from(program: ProgramModel, root: str) -> dict[str, tuple[str, ...]]:
    """Functions reachable from ``root`` with one witness path each."""
    cache = program.caches.setdefault("reachable", {})
    if root not in cache:
        paths: dict[str, tuple[str, ...]] = {}
        if root in program.functions:
            paths[root] = (root,)
            frontier = [root]
            while frontier:
                current = frontier.pop()
                for site in program.callees(current):
                    assert site.target is not None
                    if site.target not in paths:
                        paths[site.target] = paths[current] + (site.target,)
                        frontier.append(site.target)
        cache[root] = paths
    return cache[root]


def transitive_origins(program: ProgramModel, root: str,
                       effects: Iterable[Effect]) -> list[TransitiveOrigin]:
    """Every direct origin of ``effects`` reachable from ``root``."""
    wanted = set(effects)
    out: list[TransitiveOrigin] = []
    for qualname, path in reachable_from(program, root).items():
        for origin in direct_effects(program, qualname):
            if origin.effect in wanted:
                out.append(TransitiveOrigin(origin=origin, path=path))
    out.sort(key=lambda t: (t.origin.module, t.origin.lineno,
                            t.origin.effect.value))
    return out


# -- structured post-dominance ------------------------------------------------

#: Outcomes of executing a statement region: the region *satisfied* the
#: predicate on every path through it, *exited* the function (return /
#: raise / break / continue) without satisfying it, or *fell* through
#: to whatever follows.
SAT = "sat"
EXIT = "exit"
FALL = "fall"


def _seq_outcomes(stmts: list[ast.stmt], is_sat: SatPredicate) -> set[str]:
    """Outcome set of executing ``stmts`` in order (starting fresh)."""
    out = {FALL}
    for stmt in stmts:
        if FALL not in out:
            break
        out.discard(FALL)
        out |= _stmt_outcomes(stmt, is_sat)
    return out


def _stmt_outcomes(stmt: ast.stmt, is_sat: SatPredicate) -> set[str]:
    if is_sat(stmt):
        return {SAT}
    if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
        return {EXIT}
    if isinstance(stmt, ast.If):
        return _seq_outcomes(stmt.body, is_sat) \
            | _seq_outcomes(stmt.orelse, is_sat)
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        # The body may run zero times, so the loop always may fall
        # through; break/continue in the body surface as EXIT, which is
        # conservative in the safe direction.
        return {FALL} | (_seq_outcomes(stmt.body, is_sat) - {FALL})
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _seq_outcomes(stmt.body, is_sat)
    if isinstance(stmt, ast.Try):
        out = _seq_outcomes(stmt.body + stmt.orelse, is_sat)
        for handler in stmt.handlers:
            out |= _seq_outcomes(handler.body, is_sat)
        return _through_final(out, stmt.finalbody, is_sat)
    return {FALL}


def _through_final(out: set[str], finalbody: list[ast.stmt],
                   is_sat: SatPredicate) -> set[str]:
    """Pipe a try's outcomes through its ``finally`` block."""
    if not finalbody:
        return out
    final = _seq_outcomes(finalbody, is_sat)
    if final == {SAT}:
        return {SAT}  # the finally satisfies on every path
    combined: set[str] = set()
    for outcome in out:
        combined |= final if outcome == FALL else {outcome}
    return combined


def _outcomes_after(stmts: list[ast.stmt], target: ast.AST,
                    is_sat: SatPredicate) -> Optional[set[str]]:
    """Outcome set from just after ``target`` to the end of ``stmts``.

    ``None`` when ``target`` is not inside this statement list.
    """
    for i, stmt in enumerate(stmts):
        if stmt is target:
            inner: Optional[set[str]] = {FALL}
        else:
            inner = _outcomes_within(stmt, target, is_sat)
        if inner is None:
            continue
        if FALL in inner:
            inner.discard(FALL)
            inner |= _seq_outcomes(stmts[i + 1:], is_sat)
        return inner
    return None


def _outcomes_within(stmt: ast.stmt, target: ast.AST,
                     is_sat: SatPredicate) -> Optional[set[str]]:
    """Outcomes from after ``target`` to the end of ``stmt``'s region."""
    if isinstance(stmt, ast.If):
        for branch in (stmt.body, stmt.orelse):
            out = _outcomes_after(branch, target, is_sat)
            if out is not None:
                return out
        return None
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        # After the write, the current iteration finishes and the loop
        # may exit immediately — FALL propagates to the loop's suffix.
        return _outcomes_after(stmt.body, target, is_sat)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _outcomes_after(stmt.body, target, is_sat)
    if isinstance(stmt, ast.Try):
        for region in (stmt.body, stmt.orelse,
                       *(h.body for h in stmt.handlers), stmt.finalbody):
            out = _outcomes_after(region, target, is_sat)
            if out is not None:
                return _through_final(out, stmt.finalbody, is_sat) \
                    if region is not stmt.finalbody else out
        return None
    return None


def statement_postdominated(body: list[ast.stmt], target: ast.AST,
                            is_sat: SatPredicate) -> bool:
    """True when every path from just after ``target`` to any function
    exit passes a statement satisfying ``is_sat`` first.

    ``body`` is the function body containing ``target`` (possibly
    nested).  Unknown targets are *not* post-dominated — the safe
    default for a soundness check.
    """
    out = _outcomes_after(body, target, is_sat)
    return out == {SAT}


# -- parameter attribute-read fixpoint ----------------------------------------


def param_attr_reads(program: ProgramModel) -> dict[str, dict[str, set[str]]]:
    """For every function: parameter name -> attribute names read.

    The result is a fixpoint over parameter passing: when ``f`` passes
    its parameter ``p`` to ``g`` (positionally or by keyword), the
    attributes ``g`` reads off the corresponding parameter count as
    reads of ``p`` in ``f``.  Method calls ``p.m(...)`` bind ``p`` to
    ``m``'s ``self`` once the cache-key rule resolves ``m`` against the
    parameter's declared class (see
    :func:`repro.analysis.rules_cachekey.stage_field_reads`).
    """
    cached = program.caches.get("param_reads")
    if cached is not None:
        return cached

    reads: dict[str, dict[str, set[str]]] = {
        qualname: {p: set() for p in fn.params}
        for qualname, fn in program.functions.items()}

    # Direct reads: Attribute(value=Name(param), ctx=Load).
    for qualname, fn in program.functions.items():
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Attribute) \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id in reads[qualname]:
                reads[qualname][sub.value.id].add(sub.attr)

    # Propagation constraints: (caller, caller_param) ⊇ (callee, callee_param)
    links: list[tuple[str, str, str, str]] = []
    for qualname, fn in program.functions.items():
        for site in fn.calls:
            if site.target is None or site.is_reference:
                continue
            callee = program.functions[site.target]
            callee_params = list(callee.params)
            offset = 0
            # Calling a method through its class instance skips self.
            if callee.class_qualname is not None and callee_params \
                    and callee_params[0] in ("self", "cls") \
                    and callee.name != "__init__":
                offset = 1
            if callee.name == "__init__" and callee_params \
                    and callee_params[0] == "self":
                offset = 1
            for pos, caller_param in enumerate(site.pos_args):
                if caller_param is None:
                    continue
                index = pos + offset
                if index < len(callee_params):
                    links.append((qualname, caller_param,
                                  site.target, callee_params[index]))
            for kw_name, caller_param in site.kw_args.items():
                if caller_param is not None and kw_name in callee_params:
                    links.append((qualname, caller_param,
                                  site.target, kw_name))

    changed = True
    while changed:
        changed = False
        for caller, caller_param, callee, callee_param in links:
            source = reads[callee][callee_param]
            sink = reads[caller][caller_param]
            if not source <= sink:
                sink |= source
                changed = True

    program.caches["param_reads"] = reads
    return reads
