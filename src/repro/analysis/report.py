"""Static-analysis context, suppressions and the run entry point.

``repro lint --static`` builds a :class:`StaticContext` — the program
model plus the declared analysis roots, the runner's forwarded-env
whitelist and the cache-key manifest — and pushes it through the same
check registry the DRC/oracle families use, so D/C findings come out
as ordinary :class:`~repro.verify.diagnostics.Diagnostic` records in a
:class:`~repro.verify.diagnostics.VerifyReport`.

Suppressions are inline and carry the code they silence::

    start = time.perf_counter()  # static: ok[D002] runtime metadata only

``# static: ok[D002,C003] reason`` silences several codes on one line.
A marker without a rationale after the bracket is still honored at
runtime but fails the repo's own hygiene test
(``tests/test_analysis_static.py``), which keeps the acceptance rule
"every suppression carries a rationale" machine-checked.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence, Union

from repro.analysis.callgraph import ProgramModel, build_program
from repro.verify.diagnostics import Diagnostic, Severity, VerifyReport
from repro.verify.registry import register, registered_checks, run_checks

if TYPE_CHECKING:  # runtime imports stay lazy: the analyzer is AST-pure
    from repro.engine.invariants import KernelParitySpec, StateInvariant
    from repro.io.artifacts import StageKeyEntry
    from repro.units import Dim

#: ``# static: ok[D001]`` / ``# static: ok[D002,C003] rationale``
SUPPRESS_RE = re.compile(r"#\s*static:\s*ok\[([A-Z0-9,\s]+)\]\s*(.*)")

#: Stage functions whose transitive closure must be deterministic: the
#: four pipeline stages of :mod:`repro.core.stages`.
DEFAULT_DETERMINISM_ROOTS: tuple[str, ...] = (
    "repro.core.stages.build_stage",
    "repro.core.stages.policy_stage",
    "repro.core.stages.retrim_stage",
    "repro.core.stages.analyze_stage",
)

#: Functions that execute inside worker processes: the pool
#: initializer/entry of the flow runner, the CLI's suite worker and
#: the serve daemon's request worker.
DEFAULT_PROCESS_ROOTS: tuple[str, ...] = (
    "repro.runner.runner._pool_init",
    "repro.runner.runner._pool_run",
    "repro.cli._suite_row",
    "repro.serve.workers._serve_pool_init",
    "repro.serve.workers._serve_pool_run",
    "repro.serve.workers._serve_pool_ping",
)


@dataclass(frozen=True)
class WorkerGroup:
    """One process-pool seam: a worker entry and its pool initializer.

    The S-codes (:mod:`repro.analysis.rules_state`) analyze each group
    as a unit: state the entry's closure touches must be reset or
    installed by the *same group's* initializer.
    """

    entry: str
    initializer: Optional[str] = None


@dataclass(frozen=True)
class ContextStateSpec:
    """One context-local state family for S004 (e.g. the obs tracer)."""

    name: str
    #: Functions that read the context state.
    accessors: tuple[str, ...]
    #: Functions that install or reset it (any one reachable from the
    #: group satisfies the check).
    installers: tuple[str, ...]


#: The pool seams of this repository: the flow runner's worker pool,
#: the CLI suite table's row pool and the serve daemon's request pool.
DEFAULT_WORKER_GROUPS: tuple[WorkerGroup, ...] = (
    WorkerGroup(entry="repro.runner.runner._pool_run",
                initializer="repro.runner.runner._pool_init"),
    WorkerGroup(entry="repro.cli._suite_row",
                initializer="repro.cli._suite_pool_init"),
    WorkerGroup(entry="repro.serve.workers._serve_pool_run",
                initializer="repro.serve.workers._serve_pool_init"),
)

#: The obs tracer is context-local state: worker code may traverse its
#: accessors only when the group installs (or disables) a tracer.
DEFAULT_CONTEXT_SPECS: tuple[ContextStateSpec, ...] = (
    ContextStateSpec(
        name="obs tracer",
        accessors=("repro.obs.spans.active", "repro.obs.spans.span",
                   "repro.obs.spans.current_span_id"),
        installers=("repro.obs.spans.enable", "repro.obs.spans.disable",
                    "repro.obs.spans.capture")),
)

#: Dataclasses pickled into worker processes (S002).
DEFAULT_PAYLOAD_TYPES: tuple[str, ...] = ("repro.runner.matrix.JobSpec",)

#: The content-addressed key builder; functions calling it anchor the
#: B002 backend-independence sweep.
DEFAULT_KEY_BUILDERS: tuple[str, ...] = ("repro.io.artifacts.content_key",)

#: Everything that reveals the backend selection to its caller.
DEFAULT_BACKEND_SOURCES: tuple[str, ...] = (
    "repro.engine.backends.default_backend_name",
    "repro.engine.backends.resolve_backend",
    "repro.engine.backends.get_backend",
)

#: Module prefixes whose public unit-bearing signatures the Q004
#: annotation-coverage ratchet applies to.
DEFAULT_DIM_SIGNATURE_ROOTS: tuple[str, ...] = (
    "repro.timing", "repro.power", "repro.extract", "repro.reliability",
    "repro.engine",
)


@dataclass
class Suppression:
    """One inline suppression marker found in a module."""

    module: str
    lineno: int
    codes: tuple[str, ...]
    rationale: str


@dataclass
class StaticContext:
    """Everything one static-analysis run inspects."""

    program: ProgramModel
    determinism_roots: tuple[str, ...] = DEFAULT_DETERMINISM_ROOTS
    process_roots: tuple[str, ...] = DEFAULT_PROCESS_ROOTS
    env_whitelist: tuple[str, ...] = ()
    manifest: tuple["StageKeyEntry", ...] = ()
    #: Stateful-soundness config (I/S/B codes).  Default empty so a
    #: bare fixture context exercises only the D/C families; the real
    #: package context (:func:`build_static_context`) fills them in.
    invariants: tuple["StateInvariant", ...] = ()
    worker_groups: tuple[WorkerGroup, ...] = ()
    payload_types: tuple[str, ...] = ()
    context_specs: tuple[ContextStateSpec, ...] = ()
    kernel_parity: Optional["KernelParitySpec"] = None
    key_builders: tuple[str, ...] = ()
    backend_sources: tuple[str, ...] = ()
    #: Dimension-inference config (Q codes): the DIMENSIONS manifest,
    #: the fully-qualified unit-constant table and the Q004 signature
    #: roots.  Empty by default for the same fixture-isolation reason.
    dimensions_manifest: dict[str, "Dim"] = field(default_factory=dict)
    unit_constants: dict[str, "Dim"] = field(default_factory=dict)
    dim_signature_roots: tuple[str, ...] = ()
    _suppressions: Optional[dict[tuple[str, int], Suppression]] = field(
        default=None, repr=False)

    def suppressions(self) -> dict[tuple[str, int], Suppression]:
        """(module, lineno) -> marker, scanned lazily from the sources."""
        if self._suppressions is None:
            table: dict[tuple[str, int], Suppression] = {}
            for module in self.program.modules.values():
                for i, line in enumerate(module.source_lines, start=1):
                    match = SUPPRESS_RE.search(line)
                    if match is not None:
                        codes = tuple(c.strip()
                                      for c in match.group(1).split(",")
                                      if c.strip())
                        table[(module.name, i)] = Suppression(
                            module=module.name, lineno=i, codes=codes,
                            rationale=match.group(2).strip())
            self._suppressions = table
        return self._suppressions

    def suppressed(self, code: str, module: str, lineno: int) -> bool:
        """True when ``module:lineno`` carries a marker for ``code``."""
        marker = self.suppressions().get((module, lineno))
        return marker is not None and code in marker.codes


@register("static-config", kind="static")
def check_static_config(ctx: Any) -> Iterator[Diagnostic]:
    """Declared roots and manifest entries resolve to real functions."""
    program = getattr(ctx, "program", None)
    if program is None:
        return
    for root in (*ctx.determinism_roots, *ctx.process_roots):
        if root not in program.functions:
            yield Diagnostic(
                rule="static-config", severity=Severity.ERROR,
                message=f"declared analysis root '{root}' does not exist "
                        f"in package '{program.package}'",
                hint="update the root lists in repro.analysis.report (or "
                     "the ones passed to StaticContext) after renaming "
                     "stage/worker functions")
    for entry in ctx.manifest:
        missing = [name for name, attr in (
            (entry.stage, "functions"), (entry.params_type, "classes"))
            if name not in getattr(program, attr)]
        for name in missing:
            yield Diagnostic(
                rule="static-config", severity=Severity.ERROR,
                message=f"manifest entry '{entry.kind}' names unknown "
                        f"'{name}'",
                hint="keep STAGE_KEY_MANIFEST in sync with the stage "
                     "functions and parameter dataclasses it describes")

    def unknown(kind: str, name: str, table: str) -> Diagnostic:
        return Diagnostic(
            rule="static-config", severity=Severity.ERROR,
            message=f"{kind} names unknown {table} '{name}'",
            hint="keep the stateful-soundness config (repro.engine."
                 "invariants, repro.analysis.report defaults) in sync "
                 "with the code it describes")

    for inv in getattr(ctx, "invariants", ()):
        if inv.cls not in program.classes:
            yield unknown("state invariant", inv.cls, "class")
    for group in getattr(ctx, "worker_groups", ()):
        if group.entry not in program.functions:
            yield unknown("worker group", group.entry, "entry function")
        if group.initializer \
                and group.initializer not in program.functions:
            yield unknown("worker group", group.initializer,
                          "initializer function")
    for payload in getattr(ctx, "payload_types", ()):
        if payload not in program.classes:
            yield unknown("payload type", payload, "class")
    for spec in getattr(ctx, "context_specs", ()):
        for name in (*spec.accessors, *spec.installers):
            if name not in program.functions:
                yield unknown(f"context spec '{spec.name}'", name,
                              "function")
    parity = getattr(ctx, "kernel_parity", None)
    if parity is not None:
        for name in parity.classes:
            if name not in program.classes:
                yield unknown("kernel parity spec", name, "class")


def build_static_context(
        paths: Optional[Sequence[Union[str, Path]]] = None) -> StaticContext:
    """The default context: the installed ``repro`` package itself.

    ``paths`` may name one package root directory (e.g. ``src/repro``);
    the repro-specific roots, whitelist and manifest still apply, which
    is exactly right for linting a checkout of this repository.
    """
    import repro
    from repro.engine.invariants import ENGINE_STATE_INVARIANTS, KERNEL_PARITY
    from repro.io.artifacts import STAGE_KEY_MANIFEST
    from repro.runner.runner import FORWARDED_ENV_WHITELIST
    from repro.units import DIMENSIONS, UNIT_DIMENSIONS

    if paths:
        if len(paths) > 1:
            raise ValueError("static analysis takes one package root")
        root = Path(paths[0])
    else:
        root = Path(repro.__file__).parent
    program = build_program(root, package="repro")
    return StaticContext(program=program,
                         env_whitelist=FORWARDED_ENV_WHITELIST,
                         manifest=STAGE_KEY_MANIFEST,
                         invariants=ENGINE_STATE_INVARIANTS,
                         worker_groups=DEFAULT_WORKER_GROUPS,
                         payload_types=DEFAULT_PAYLOAD_TYPES,
                         context_specs=DEFAULT_CONTEXT_SPECS,
                         kernel_parity=KERNEL_PARITY,
                         key_builders=DEFAULT_KEY_BUILDERS,
                         backend_sources=DEFAULT_BACKEND_SOURCES,
                         dimensions_manifest=dict(DIMENSIONS),
                         unit_constants={
                             f"repro.units.{name}": dim
                             for name, dim in UNIT_DIMENSIONS.items()},
                         dim_signature_roots=DEFAULT_DIM_SIGNATURE_ROOTS)


def expand_code_patterns(codes: Sequence[str]) -> list[str]:
    """Expand ``fnmatch`` patterns (``Q*``, ``U00?``) to static rule ids.

    Raises :class:`KeyError` for a pattern that matches no registered
    static check — a silent no-match would make ``--codes Q*`` look
    clean when the Q family simply failed to register.
    """
    import fnmatch

    available = [check.rule for check in registered_checks(["static"])]
    selected: list[str] = []
    for pattern in codes:
        matched = fnmatch.filter(available, pattern)
        if not matched:
            raise KeyError(
                f"code pattern {pattern!r} matches no registered static "
                f"check (known: {', '.join(sorted(available))})")
        selected.extend(rule for rule in matched if rule not in selected)
    return selected


def analyze_program(ctx: StaticContext,
                    codes: Optional[Sequence[str]] = None) -> VerifyReport:
    """Run registered static checks over ``ctx``.

    ``codes`` restricts the run to rule ids matching the given
    ``fnmatch`` patterns (e.g. ``["Q*"]`` for the dimension family).
    """
    rules = expand_code_patterns(codes) if codes else None
    return run_checks(ctx, rules=rules,
                      kinds=["static"])  # type: ignore[arg-type]


def unsuppressed_rationales(ctx: StaticContext) -> list[Suppression]:
    """Suppression markers with no rationale text (hygiene violations)."""
    return [s for s in ctx.suppressions().values() if not s.rationale]
