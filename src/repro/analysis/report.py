"""Static-analysis context, suppressions and the run entry point.

``repro lint --static`` builds a :class:`StaticContext` — the program
model plus the declared analysis roots, the runner's forwarded-env
whitelist and the cache-key manifest — and pushes it through the same
check registry the DRC/oracle families use, so D/C findings come out
as ordinary :class:`~repro.verify.diagnostics.Diagnostic` records in a
:class:`~repro.verify.diagnostics.VerifyReport`.

Suppressions are inline and carry the code they silence::

    start = time.perf_counter()  # static: ok[D002] runtime metadata only

``# static: ok[D002,C003] reason`` silences several codes on one line.
A marker without a rationale after the bracket is still honored at
runtime but fails the repo's own hygiene test
(``tests/test_analysis_static.py``), which keeps the acceptance rule
"every suppression carries a rationale" machine-checked.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.analysis.callgraph import ProgramModel, build_program
from repro.verify.diagnostics import Diagnostic, Severity, VerifyReport
from repro.verify.registry import register, run_checks

#: ``# static: ok[D001]`` / ``# static: ok[D002,C003] rationale``
SUPPRESS_RE = re.compile(r"#\s*static:\s*ok\[([A-Z0-9,\s]+)\]\s*(.*)")

#: Stage functions whose transitive closure must be deterministic: the
#: four pipeline stages of :mod:`repro.core.stages`.
DEFAULT_DETERMINISM_ROOTS: tuple[str, ...] = (
    "repro.core.stages.build_stage",
    "repro.core.stages.policy_stage",
    "repro.core.stages.retrim_stage",
    "repro.core.stages.analyze_stage",
)

#: Functions that execute inside worker processes: the pool
#: initializer/entry of the flow runner and the CLI's suite worker.
DEFAULT_PROCESS_ROOTS: tuple[str, ...] = (
    "repro.runner.runner._pool_init",
    "repro.runner.runner._pool_run",
    "repro.cli._suite_row",
)


@dataclass
class Suppression:
    """One inline suppression marker found in a module."""

    module: str
    lineno: int
    codes: tuple[str, ...]
    rationale: str


@dataclass
class StaticContext:
    """Everything one static-analysis run inspects."""

    program: ProgramModel
    determinism_roots: tuple[str, ...] = DEFAULT_DETERMINISM_ROOTS
    process_roots: tuple[str, ...] = DEFAULT_PROCESS_ROOTS
    env_whitelist: tuple[str, ...] = ()
    manifest: tuple = ()
    _suppressions: Optional[dict[tuple[str, int], Suppression]] = field(
        default=None, repr=False)

    def suppressions(self) -> dict[tuple[str, int], Suppression]:
        """(module, lineno) -> marker, scanned lazily from the sources."""
        if self._suppressions is None:
            table: dict[tuple[str, int], Suppression] = {}
            for module in self.program.modules.values():
                for i, line in enumerate(module.source_lines, start=1):
                    match = SUPPRESS_RE.search(line)
                    if match is not None:
                        codes = tuple(c.strip()
                                      for c in match.group(1).split(",")
                                      if c.strip())
                        table[(module.name, i)] = Suppression(
                            module=module.name, lineno=i, codes=codes,
                            rationale=match.group(2).strip())
            self._suppressions = table
        return self._suppressions

    def suppressed(self, code: str, module: str, lineno: int) -> bool:
        """True when ``module:lineno`` carries a marker for ``code``."""
        marker = self.suppressions().get((module, lineno))
        return marker is not None and code in marker.codes


@register("static-config", kind="static")
def check_static_config(ctx) -> Iterator[Diagnostic]:
    """Declared roots and manifest entries resolve to real functions."""
    program = getattr(ctx, "program", None)
    if program is None:
        return
    for root in (*ctx.determinism_roots, *ctx.process_roots):
        if root not in program.functions:
            yield Diagnostic(
                rule="static-config", severity=Severity.ERROR,
                message=f"declared analysis root '{root}' does not exist "
                        f"in package '{program.package}'",
                hint="update the root lists in repro.analysis.report (or "
                     "the ones passed to StaticContext) after renaming "
                     "stage/worker functions")
    for entry in ctx.manifest:
        missing = [name for name, attr in (
            (entry.stage, "functions"), (entry.params_type, "classes"))
            if name not in getattr(program, attr)]
        for name in missing:
            yield Diagnostic(
                rule="static-config", severity=Severity.ERROR,
                message=f"manifest entry '{entry.kind}' names unknown "
                        f"'{name}'",
                hint="keep STAGE_KEY_MANIFEST in sync with the stage "
                     "functions and parameter dataclasses it describes")


def build_static_context(
        paths: Optional[Sequence[Union[str, Path]]] = None) -> StaticContext:
    """The default context: the installed ``repro`` package itself.

    ``paths`` may name one package root directory (e.g. ``src/repro``);
    the repro-specific roots, whitelist and manifest still apply, which
    is exactly right for linting a checkout of this repository.
    """
    import repro
    from repro.io.artifacts import STAGE_KEY_MANIFEST
    from repro.runner.runner import FORWARDED_ENV_WHITELIST

    if paths:
        if len(paths) > 1:
            raise ValueError("static analysis takes one package root")
        root = Path(paths[0])
    else:
        root = Path(repro.__file__).parent
    program = build_program(root, package="repro")
    return StaticContext(program=program,
                         env_whitelist=FORWARDED_ENV_WHITELIST,
                         manifest=STAGE_KEY_MANIFEST)


def analyze_program(ctx: StaticContext) -> VerifyReport:
    """Run every registered static check over ``ctx``."""
    return run_checks(ctx, kinds=["static"])  # type: ignore[arg-type]


def unsuppressed_rationales(ctx: StaticContext) -> list[Suppression]:
    """Suppression markers with no rationale text (hygiene violations)."""
    return [s for s in ctx.suppressions().values() if not s.rationale]
