"""Whole-program determinism & cache-soundness analyzer.

An AST-based static pass over the ``repro`` package (or any package
root) that proves, at CI time, the two invariants the runtime cannot
cheaply check:

* every function reachable from a pipeline stage or a
  :class:`~repro.runner.FlowRunner` worker entrypoint is deterministic
  and free of cross-process shared-state mutation (**D-codes**,
  :mod:`repro.analysis.rules_determinism`);
* every input a content-addressed stage reads is folded into its
  sha256 artifact key (**C-codes**,
  :mod:`repro.analysis.rules_cachekey`, driven by
  :data:`repro.io.artifacts.STAGE_KEY_MANIFEST`);
* every guarded engine-state mutation is paired with its declared
  invalidation and read behind the recompile barrier (**I-codes**,
  :mod:`repro.analysis.rules_invalidation`, driven by
  :data:`repro.engine.invariants.ENGINE_STATE_INVARIANTS`);
* process-pool workers neither read un-reset globals nor leave the
  forwarded-environment seam, and their payloads pickle soundly
  (**S-codes**, :mod:`repro.analysis.rules_state`);
* every backend exposes the same kernel surface and no cache key
  depends on backend selection (**B-codes**,
  :mod:`repro.analysis.rules_backends`, driven by
  :data:`repro.engine.invariants.KERNEL_PARITY`);
* every physical quantity flows under its declared dimension — an
  interprocedural abstract interpretation over the
  :class:`repro.units.Dim` lattice, seeded from ``Annotated`` signature
  annotations and the :data:`repro.units.DIMENSIONS` manifest
  (**Q-codes** plus the lexical **U-codes**,
  :mod:`repro.analysis.rules_units`, inference in
  :mod:`repro.analysis.dimensions`).

The machinery: :mod:`repro.analysis.callgraph` builds a module-level
call graph with import/alias/re-export/self resolution;
:mod:`repro.analysis.effects` infers per-function effects and
propagates them to a fixpoint over that graph;
:mod:`repro.analysis.report` wires the rules into the
:mod:`repro.verify` check registry under kind ``"static"`` and defines
the inline ``# static: ok[CODE] rationale`` suppression syntax.

Entry points: ``repro lint --static [pkgroot]`` (CLI) and
:func:`analyze_program` / :func:`build_static_context` (library).
"""

from repro.analysis.callgraph import (CallSite, ClassInfo, FunctionInfo,
                                      ModuleInfo, ProgramModel, build_program)
from repro.analysis.dimensions import (AbsVal, DimConfig, DimensionAnalysis,
                                       DimFinding, SignatureGap)
from repro.analysis.effects import (Effect, EffectOrigin, TransitiveOrigin,
                                    direct_effects, param_attr_reads,
                                    reachable_from, transitive_origins)
from repro.analysis.report import (DEFAULT_DETERMINISM_ROOTS,
                                   DEFAULT_DIM_SIGNATURE_ROOTS,
                                   DEFAULT_PROCESS_ROOTS,
                                   DEFAULT_WORKER_GROUPS, ContextStateSpec,
                                   StaticContext, Suppression, WorkerGroup,
                                   analyze_program, build_static_context,
                                   expand_code_patterns,
                                   unsuppressed_rationales)

# Importing the rule modules registers every D/C/I/S/B/Q/U check; keep
# these after the registry-facing imports (they decorate into it).
from repro.analysis import rules_determinism as _rules_d   # noqa: E402,F401
from repro.analysis import rules_cachekey as _rules_c      # noqa: E402,F401
from repro.analysis import rules_invalidation as _rules_i  # noqa: E402,F401
from repro.analysis import rules_state as _rules_s         # noqa: E402,F401
from repro.analysis import rules_backends as _rules_b      # noqa: E402,F401
from repro.analysis import rules_units as _rules_q         # noqa: E402,F401

__all__ = [
    "AbsVal",
    "CallSite",
    "ClassInfo",
    "ContextStateSpec",
    "DEFAULT_DETERMINISM_ROOTS",
    "DEFAULT_DIM_SIGNATURE_ROOTS",
    "DEFAULT_PROCESS_ROOTS",
    "DEFAULT_WORKER_GROUPS",
    "DimConfig",
    "DimFinding",
    "DimensionAnalysis",
    "Effect",
    "EffectOrigin",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramModel",
    "SignatureGap",
    "StaticContext",
    "Suppression",
    "TransitiveOrigin",
    "WorkerGroup",
    "analyze_program",
    "build_program",
    "build_static_context",
    "direct_effects",
    "expand_code_patterns",
    "param_attr_reads",
    "reachable_from",
    "transitive_origins",
    "unsuppressed_rationales",
]
