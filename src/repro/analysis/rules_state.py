"""S-codes: fork/worker state safety of the process-pool seams.

A ``ProcessPoolExecutor`` worker inherits the parent's module state at
fork time and then drifts: globals mutated in the parent are invisible
to it, state it mutates leaks across the cells of its serial twin, and
anything its payload carries must survive a pickle round-trip.  Each
S-code checks one way that seam breaks, per declared *worker group*
(an entry function plus its pool initializer, ``ctx.worker_groups``):

========  ====================================================================
S001      module-level mutable state read inside a worker entry's
          closure that the group's initializer never resets
S002      a payload dataclass field (``JobSpec``) whose declared type
          cannot safely cross the process boundary (``Callable``,
          ``Any``, or a program class that is neither a dataclass nor
          an ``Enum``)
S003      ``os.environ`` access outside the forwarded-variable seam:
          any write in worker code, or a read/initializer-write of a
          variable not on the forwarded whitelist
S004      context-local state (the obs tracer) accessed from a worker
          entry whose group never installs or resets it
========  ====================================================================

Suppress a deliberate occurrence with ``# static: ok[CODE] rationale``
on the reported line (S002/S004 anchor at the payload class / worker
entry definition).  All S-codes are ERROR.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.analysis.callgraph import (ClassInfo, FunctionInfo, ModuleInfo,
                                      ProgramModel)
from repro.analysis.effects import (Effect, TransitiveOrigin, _locals_of,
                                    reachable_from, transitive_origins)
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register

if TYPE_CHECKING:
    from repro.analysis.report import WorkerGroup


def _program_and_groups(
        ctx: Any) -> Optional[tuple[ProgramModel, tuple["WorkerGroup", ...]]]:
    program = getattr(ctx, "program", None)
    groups = tuple(getattr(ctx, "worker_groups", ()))
    if program is None or not groups:
        return None
    return program, groups


def _render_path(path: tuple[str, ...]) -> str:
    if len(path) <= 4:
        return " -> ".join(path)
    return " -> ".join((*path[:2], "...", *path[-2:]))


def _global_mutations_of(program: ProgramModel,
                         fn: FunctionInfo) -> set[tuple[str, str]]:
    """(module, name) globals this one function mutates.

    Per-function twin of the whole-program sweep in
    :func:`repro.analysis.effects._mutated_globals_of`.
    """
    module = program.modules[fn.module]
    out: set[tuple[str, str]] = set()
    for sub in ast.walk(fn.node):
        if isinstance(sub, ast.Global):
            out.update((fn.module, n) for n in sub.names)
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                              ast.Delete)):
            targets = (sub.targets
                       if isinstance(sub, (ast.Assign, ast.Delete))
                       else [sub.target])
            for target in targets:
                while isinstance(target, (ast.Subscript, ast.Attribute)):
                    target = target.value
                if isinstance(target, ast.Name) \
                        and target.id in module.global_names \
                        and target.id not in _locals_of(fn):
                    out.add((fn.module, target.id))
    return out


def _closure(program: ProgramModel,
             roots: tuple[str, ...]) -> dict[str, tuple[str, ...]]:
    """Union of ``reachable_from`` over ``roots`` (first witness wins)."""
    merged: dict[str, tuple[str, ...]] = {}
    for root in roots:
        for qualname, path in reachable_from(program, root).items():
            merged.setdefault(qualname, path)
    return merged


def _runtime_mutable(ctx: Any, program: ProgramModel,
                     groups: tuple["WorkerGroup", ...]) -> set[tuple[str, str]]:
    """Globals some function reachable from any analyzed root mutates.

    Import-time registries (check tables, backend maps) are only
    mutated by registration helpers no root reaches — excluding them
    keeps S001 about state that actually changes while workers live.
    """
    roots = (*getattr(ctx, "determinism_roots", ()),
             *getattr(ctx, "process_roots", ()),
             *(g.entry for g in groups),
             *(g.initializer for g in groups if g.initializer))
    mutable: set[tuple[str, str]] = set()
    for qualname in _closure(program, tuple(dict.fromkeys(roots))):
        fn = program.functions.get(qualname)
        if fn is not None:
            mutable |= _global_mutations_of(program, fn)
    return mutable


@register("S001", kind="static")
def check_worker_globals(ctx: Any) -> Iterator[Diagnostic]:
    """Worker-read mutable globals the pool initializer never resets."""
    bundle = _program_and_groups(ctx)
    if bundle is None:
        return
    program, groups = bundle
    mutable = _runtime_mutable(ctx, program, groups)
    seen: set[tuple[str, int, str]] = set()
    for group in groups:
        reset: set[tuple[str, str]] = set()
        if group.initializer:
            for qualname in _closure(program, (group.initializer,)):
                fn = program.functions.get(qualname)
                if fn is not None:
                    reset |= _global_mutations_of(program, fn)
        for qualname, path in sorted(_closure(program, (group.entry,)).items()):
            fn = program.functions.get(qualname)
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)):
                    continue
                pair = (fn.module, node.id)
                if pair not in mutable or pair in reset \
                        or node.id in _locals_of(fn):
                    continue
                key = (fn.module, node.lineno, node.id)
                if key in seen:
                    continue
                seen.add(key)
                if ctx.suppressed("S001", fn.module, node.lineno):
                    continue
                initializer = group.initializer or "<no initializer>"
                yield Diagnostic(
                    rule="S001", severity=Severity.ERROR,
                    message=f"worker entry '{group.entry}' reads "
                            f"module-level '{node.id}', mutated at "
                            f"runtime but never reset by {initializer} "
                            f"[reached via {_render_path(path)}]",
                    obj=f"{fn.module}:{node.lineno}",
                    hint="a forked worker inherits whatever the parent "
                         "left in this global; reset it in the pool "
                         "initializer or pass the value through the "
                         "job payload")


# -- S002: payload picklability ------------------------------------------------

#: Canonical heads that never cross a process boundary soundly.
_BAD_HEADS = frozenset({
    "typing.Callable", "collections.abc.Callable", "typing.Any",
    "builtins.object", "builtins.type",
})

_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})

_BUILTIN_TYPE_NAMES = frozenset({
    "str", "int", "float", "bool", "bytes", "complex", "object", "type",
    "tuple", "list", "dict", "set", "frozenset", "None",
})


def _canonical_name(program: ProgramModel, module: ModuleInfo,
                    dotted: str, _depth: int = 0) -> str:
    """Resolve an annotation name to its defining dotted path."""
    if _depth > 8:
        return dotted
    if dotted in module.aliases:  # DesignRef = str
        return _canonical_name(program, module, module.aliases[dotted],
                               _depth + 1)
    head, _, rest = dotted.partition(".")
    if head in module.imports:
        expanded = module.imports[head] + (f".{rest}" if rest else "")
        resolved = program.resolve_export(expanded)
        return resolved if resolved is not None else expanded
    local = f"{module.name}.{dotted}"
    if local in program.classes or local in program.functions:
        return local
    if not rest and head in _BUILTIN_TYPE_NAMES:
        return f"builtins.{head}"
    return dotted


def _is_enum_class(program: ProgramModel, cls: ClassInfo) -> bool:
    module = program.modules.get(cls.module)
    for base in cls.bases:
        canonical = base if module is None \
            else _canonical_name(program, module, base)
        if canonical.startswith("enum.") \
                or canonical.rsplit(".", 1)[-1] in _ENUM_BASES:
            return True
    return False


def _type_expr_problems(program: ProgramModel, module: ModuleInfo,
                        node: ast.expr) -> Iterator[str]:
    """Reasons a type expression cannot cross the process boundary."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return
            yield from _type_expr_problems(program, module, parsed)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _type_expr_problems(program, module, node.left)
        yield from _type_expr_problems(program, module, node.right)
        return
    if isinstance(node, ast.Subscript):
        yield from _type_expr_problems(program, module, node.value)
        elements = (node.slice.elts if isinstance(node.slice, ast.Tuple)
                    else [node.slice])
        for element in elements:
            yield from _type_expr_problems(program, module, element)
        return
    if isinstance(node, (ast.Name, ast.Attribute)):
        parts: list[str] = []
        probe: ast.expr = node
        while isinstance(probe, ast.Attribute):
            parts.append(probe.attr)
            probe = probe.value
        if not isinstance(probe, ast.Name):
            return
        parts.append(probe.id)
        dotted = ".".join(reversed(parts))
        canonical = _canonical_name(program, module, dotted)
        if canonical in _BAD_HEADS:
            yield (f"'{dotted}' ({canonical}) is callable/opaque and "
                   f"does not survive a pickle round-trip")
            return
        cls = program.classes.get(canonical)
        if cls is not None and not cls.is_dataclass \
                and not _is_enum_class(program, cls):
            yield (f"'{dotted}' is a program class that is neither a "
                   f"dataclass nor an Enum — its identity and mutable "
                   f"state do not survive the process boundary")


@register("S002", kind="static")
def check_payload_types(ctx: Any) -> Iterator[Diagnostic]:
    """Payload dataclass fields that cannot cross the process boundary."""
    program = getattr(ctx, "program", None)
    if program is None:
        return
    for name in getattr(ctx, "payload_types", ()):
        cls = program.classes.get(name)
        if cls is None:  # unknown payloads -> static-config
            continue
        module = program.modules.get(cls.module)
        if module is None:
            continue
        for field_name in cls.fields:
            annotation = cls.field_annotations.get(field_name)
            if annotation is None:
                continue
            try:
                parsed = ast.parse(annotation, mode="eval").body
            except SyntaxError:
                continue
            for reason in _type_expr_problems(program, module, parsed):
                if ctx.suppressed("S002", cls.module, cls.lineno):
                    continue
                yield Diagnostic(
                    rule="S002", severity=Severity.ERROR,
                    message=f"payload {cls.name}.{field_name}: {reason}",
                    obj=f"{cls.module}:{cls.lineno}",
                    hint="job payloads are pickled into every worker; "
                         "carry plain data (str/int/dataclass/Enum) and "
                         "rebuild live objects on the worker side")


@register("S003", kind="static")
def check_env_seam(ctx: Any) -> Iterator[Diagnostic]:
    """Environment access outside the forwarded-variable seam."""
    bundle = _program_and_groups(ctx)
    if bundle is None:
        return
    program, groups = bundle
    whitelist = set(getattr(ctx, "env_whitelist", ()))
    seen: set[tuple[str, int, str]] = set()

    def emit(item: TransitiveOrigin, problem: str) -> Iterator[Diagnostic]:
        origin = item.origin
        key = (origin.module, origin.lineno, origin.detail)
        if key in seen:
            return
        seen.add(key)
        if ctx.suppressed("S003", origin.module, origin.lineno):
            return
        yield Diagnostic(
            rule="S003", severity=Severity.ERROR,
            message=f"{origin.detail}: {problem} "
                    f"[reached via {_render_path(item.path)}]",
            obj=f"{origin.module}:{origin.lineno}",
            hint="workers see only the forwarded variables, captured "
                 "once by the pool initializer; read configuration "
                 "before the pool starts and pass it as an argument")

    for group in groups:
        for item in transitive_origins(program, group.entry,
                                       (Effect.ENV_READ, Effect.ENV_WRITE)):
            origin = item.origin
            if origin.effect is Effect.ENV_WRITE:
                yield from emit(
                    item, "worker code must not write os.environ — only "
                          "the pool initializer replays forwarded "
                          "variables")
            elif origin.env_var is None or origin.env_var not in whitelist:
                yield from emit(
                    item, f"reads env var "
                          f"'{origin.env_var or '<dynamic>'}' outside "
                          f"the forwarded whitelist")
        if not group.initializer:
            continue
        for item in transitive_origins(program, group.initializer,
                                       (Effect.ENV_WRITE,)):
            origin = item.origin
            if origin.env_var is None or origin.env_var not in whitelist:
                yield from emit(
                    item, f"initializer writes env var "
                          f"'{origin.env_var or '<dynamic>'}' outside "
                          f"the forwarded whitelist")


@register("S004", kind="static")
def check_context_state(ctx: Any) -> Iterator[Diagnostic]:
    """Context-local state accessed from a root that never installs it."""
    bundle = _program_and_groups(ctx)
    if bundle is None:
        return
    program, groups = bundle
    for group in groups:
        entry_fn = program.functions.get(group.entry)
        if entry_fn is None:
            continue
        entry_reach = _closure(program, (group.entry,))
        init_roots = (group.initializer,) if group.initializer else ()
        init_reach = _closure(program, init_roots)
        for spec in getattr(ctx, "context_specs", ()):
            touched = [(a, entry_reach[a]) for a in spec.accessors
                       if a in entry_reach]
            if not touched:
                continue
            if any(i in entry_reach or i in init_reach
                   for i in spec.installers):
                continue
            if ctx.suppressed("S004", entry_fn.module, entry_fn.lineno):
                continue
            accessor, path = touched[0]
            yield Diagnostic(
                rule="S004", severity=Severity.ERROR,
                message=f"worker entry '{group.entry}' reaches "
                        f"{spec.name} accessor {accessor} "
                        f"[via {_render_path(path)}] but neither it nor "
                        f"its initializer installs that state",
                obj=f"{entry_fn.module}:{entry_fn.lineno}",
                hint="a forked worker inherits the parent's "
                     f"{spec.name} object — install or reset it in the "
                     "pool initializer (e.g. obs.disable()/capture()) "
                     "so spans don't write into the parent's buffers")
