"""B-codes: backend parity of the engine's kernel surface.

The engine promises that every registered backend is a drop-in,
bit-identical implementation of the same kernel surface
(``docs/ARCHITECTURE.md``), and the artifact cache promises that a
cached cell equals a rebuilt one regardless of which backend computed
it.  Two static properties keep those promises honest:

========  ====================================================================
B001      every class in the parity manifest
          (:data:`repro.engine.invariants.KERNEL_PARITY`) defines every
          surface method, with identical parameter lists, identical
          defaults and matching property-ness — a drifted signature is
          a latent per-backend behavior fork
B002      no function in a cache-key builder's transitive closure may
          consult the backend selection (``resolve_backend`` /
          ``default_backend_name`` / a ``backend_name`` attribute) —
          a backend-conditional key input silently splits the cache
========  ====================================================================

Suppress a deliberate occurrence with ``# static: ok[CODE] rationale``
on the reported line.  Both B-codes are ERROR.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, Optional

from repro.analysis.callgraph import FunctionInfo, ProgramModel
from repro.analysis.effects import reachable_from
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register

#: (params, rendered defaults, rendered kw-only defaults, property-ness).
_Signature = tuple[tuple[str, ...], tuple[str, ...],
                   tuple[Optional[str], ...], bool]


def _signature_of(fn: FunctionInfo) -> _Signature:
    """Comparable shape of one method: params, defaults, property-ness."""
    args = fn.node.args
    defaults = tuple(ast.unparse(d) for d in args.defaults)
    kw_defaults = tuple(ast.unparse(d) if d is not None else None
                        for d in args.kw_defaults)
    return (fn.params, defaults, kw_defaults, fn.is_property)


def _describe(signature: _Signature) -> str:
    params, defaults, kw_defaults, is_property = signature
    shown = list(params)
    for i, default in enumerate(defaults):
        shown[len(params) - len(defaults) + i] += f"={default}"
    rendered = ", ".join(shown)
    return f"property ({rendered})" if is_property else f"({rendered})"


@register("B001", kind="static")
def check_backend_surface(ctx: Any) -> Iterator[Diagnostic]:
    """Every parity class exposes the same surface with equal signatures."""
    program = getattr(ctx, "program", None)
    spec = getattr(ctx, "kernel_parity", None)
    if program is None or spec is None:
        return
    classes = [(name, program.classes.get(name)) for name in spec.classes]
    present = [(name, cls) for name, cls in classes if cls is not None]
    if len(present) < 2:  # unknown classes -> static-config
        return
    for method_name in spec.surface:
        reference: Optional[tuple[str, _Signature, FunctionInfo]] = None
        for qualname, cls in present:
            if method_name not in cls.methods:
                if ctx.suppressed("B001", cls.module, cls.lineno):
                    continue
                yield Diagnostic(
                    rule="B001", severity=Severity.ERROR,
                    message=f"backend class {cls.name} does not define "
                            f"surface method '{method_name}'",
                    obj=f"{cls.module}:{cls.lineno}",
                    hint="every backend must be a drop-in for the shared "
                         "kernel surface (repro.engine.invariants."
                         "KERNEL_PARITY); add the method or prune the "
                         "surface list")
                continue
            fn = program.functions.get(cls.methods[method_name])
            if fn is None:
                continue
            signature = _signature_of(fn)
            if reference is None:
                reference = (cls.name, signature, fn)
                continue
            ref_name, ref_signature, _ = reference
            if signature != ref_signature:
                if ctx.suppressed("B001", fn.module, fn.lineno):
                    continue
                yield Diagnostic(
                    rule="B001", severity=Severity.ERROR,
                    message=f"{cls.name}.{method_name}"
                            f"{_describe(signature)} drifts from "
                            f"{ref_name}.{method_name}"
                            f"{_describe(ref_signature)}",
                    obj=f"{fn.module}:{fn.lineno}",
                    hint="matching parameter names and defaults keep "
                         "keyword call sites and default behavior "
                         "identical across backends — align the "
                         "signatures")


def _key_builder_callers(program: ProgramModel,
                         builders: tuple[str, ...]) -> list[str]:
    """Functions that call a cache-key builder directly."""
    targets = set(builders)
    callers = []
    for qualname, fn in program.functions.items():
        for site in fn.calls:
            if site.target in targets or site.external in targets:
                callers.append(qualname)
                break
    return sorted(callers)


@register("B002", kind="static")
def check_backend_in_keys(ctx: Any) -> Iterator[Diagnostic]:
    """No backend-conditional value may feed a cache-key input."""
    program = getattr(ctx, "program", None)
    builders = tuple(getattr(ctx, "key_builders", ()))
    sources = set(getattr(ctx, "backend_sources", ()))
    if program is None or not builders or not sources:
        return
    seen: set[tuple[str, int]] = set()
    for key_fn in _key_builder_callers(program, builders):
        for qualname, path in sorted(reachable_from(program, key_fn).items()):
            fn = program.functions.get(qualname)
            if fn is None:
                continue
            hits: list[tuple[int, str]] = []
            for site in fn.calls:
                resolved = site.target or site.external
                if resolved in sources:
                    hits.append((site.lineno,
                                 f"calls {resolved.rsplit('.', 1)[-1]}()"))
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Load) \
                        and node.attr == "backend_name":
                    hits.append((node.lineno, "reads .backend_name"))
            for lineno, what in sorted(hits):
                key = (fn.module, lineno)
                if key in seen:
                    continue
                seen.add(key)
                if ctx.suppressed("B002", fn.module, lineno):
                    continue
                yield Diagnostic(
                    rule="B002", severity=Severity.ERROR,
                    message=f"cache-key builder '{key_fn}' reaches code "
                            f"that {what} "
                            f"[via {' -> '.join(path[:4])}]",
                    obj=f"{fn.module}:{lineno}",
                    hint="backends are bit-identical by contract, so "
                         "the key must not depend on which one runs — "
                         "strip backend fields before keying "
                         "(PolicyParams.normalized) or suppress with "
                         "the contract as rationale")
