"""D-codes: determinism and process-safety of the flow's root functions.

The pipeline's correctness contract (PR 3) is that a parallel run
equals a serial run bit for bit and a cached artifact equals a rebuilt
one.  Both reduce to the same static property: every function reachable
from a *stage function* or a *worker entrypoint* must be deterministic
in its arguments and free of cross-process shared-state coupling.  Each
D-code checks one way that property breaks, over the transitive effect
closure computed by :mod:`repro.analysis.effects`:

========  ====================================================================
D001      unseeded RNG (``random.*`` / ``numpy.random.*`` global state,
          ``default_rng()`` with no seed, OS entropy) reachable from a root
D002      wall-clock reads (``time.time``/``perf_counter``/``datetime.now``)
          reachable from a root
D003      ``os.environ`` reads outside the runner's forwarded-variable
          whitelist (:data:`repro.runner.runner.FORWARDED_ENV_WHITELIST`)
D004      mutation of module-level or closure state (including env writes
          outside the whitelist) reachable from a root
D005      ``set`` iteration order escaping into results
D006      object identity (``id()`` / ``hash()``) feeding results — both are
          interpreter- and process-dependent for most types
========  ====================================================================

Suppress a deliberate occurrence with ``# static: ok[CODE] rationale``
on the origin line (see ``docs/VERIFY.md``).  All D-codes are ERROR:
a legitimate flow never needs an unsuppressed occurrence.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from repro.analysis.effects import (Effect, EffectOrigin,
                                    transitive_origins)
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register


def _render_path(path: tuple[str, ...]) -> str:
    if len(path) <= 4:
        return " -> ".join(path)
    return " -> ".join((*path[:2], "...", *path[-2:]))


def _effect_diagnostics(
        ctx: Any, code: str, effects: Iterable[Effect],
        roots: Iterable[str], hint: str,
        origin_filter: Optional[Callable[[EffectOrigin], bool]] = None,
) -> Iterator[Diagnostic]:
    """Shared D-code engine: reachable origins -> deduped diagnostics."""
    program = getattr(ctx, "program", None)
    if program is None:
        return  # not a static-analysis run; skip gracefully
    seen: set[tuple[str, int, str]] = set()
    for root in roots:
        if root not in program.functions:
            continue  # static-config check reports unknown roots
        for item in transitive_origins(program, root, effects):
            origin = item.origin
            if origin_filter is not None and not origin_filter(origin):
                continue
            key = (origin.module, origin.lineno, origin.detail)
            if key in seen:
                continue
            seen.add(key)
            if ctx.suppressed(code, origin.module, origin.lineno):
                continue
            yield Diagnostic(
                rule=code, severity=Severity.ERROR,
                message=f"{origin.detail} "
                        f"[reached via {_render_path(item.path)}]",
                obj=f"{origin.module}:{origin.lineno}",
                hint=hint)


def _all_roots(ctx: Any) -> tuple[str, ...]:
    return tuple(ctx.determinism_roots) + tuple(ctx.process_roots)


def _is_static(ctx: Any) -> bool:
    """True for a StaticContext; flow VerifyContexts skip these checks."""
    return getattr(ctx, "program", None) is not None


@register("D001", kind="static")
def check_unseeded_rng(ctx: Any) -> Iterator[Diagnostic]:
    """Unseeded RNG state reachable from a stage or worker root."""
    if not _is_static(ctx):
        return
    yield from _effect_diagnostics(
        ctx, "D001", (Effect.RANDOM_SEEDLESS,), _all_roots(ctx),
        hint="thread an explicit seed through the call chain "
             "(np.random.default_rng(seed)); global RNG state diverges "
             "between workers and reruns")


@register("D002", kind="static")
def check_wall_clock(ctx: Any) -> Iterator[Diagnostic]:
    """Wall-clock reads reachable from a stage or worker root."""
    if not _is_static(ctx):
        return
    yield from _effect_diagnostics(
        ctx, "D002", (Effect.WALL_CLOCK,), _all_roots(ctx),
        hint="wall-clock values folded into results break bit-identical "
             "reruns; keep timing in metadata fields and suppress the "
             "origin with a rationale")


@register("D003", kind="static")
def check_env_reads(ctx: Any) -> Iterator[Diagnostic]:
    """Environment reads outside the runner's forwarded whitelist."""
    if not _is_static(ctx):
        return
    whitelist = set(ctx.env_whitelist)

    def outside_whitelist(origin: EffectOrigin) -> bool:
        return origin.env_var is None or origin.env_var not in whitelist

    yield from _effect_diagnostics(
        ctx, "D003", (Effect.ENV_READ,), _all_roots(ctx),
        origin_filter=outside_whitelist,
        hint="workers only inherit the forwarded variables "
             "(FORWARDED_ENV_WHITELIST); read anything else before the "
             "flow starts and pass it as an argument")


@register("D004", kind="static")
def check_shared_state(ctx: Any) -> Iterator[Diagnostic]:
    """Module/closure state mutation reachable from a stage or worker root."""
    if not _is_static(ctx):
        return
    whitelist = set(ctx.env_whitelist)

    def relevant(origin: EffectOrigin) -> bool:
        if origin.effect != Effect.ENV_WRITE:
            return True
        return origin.env_var is None or origin.env_var not in whitelist

    yield from _effect_diagnostics(
        ctx, "D004",
        (Effect.GLOBAL_MUTATION, Effect.CLOSURE_MUTATION, Effect.ENV_WRITE),
        _all_roots(ctx), origin_filter=relevant,
        hint="mutations of module-level state are invisible to sibling "
             "worker processes and leak between cells of a serial run; "
             "return the value instead")


@register("D005", kind="static")
def check_set_order(ctx: Any) -> Iterator[Diagnostic]:
    """Set iteration order escaping into results."""
    if not _is_static(ctx):
        return
    yield from _effect_diagnostics(
        ctx, "D005", (Effect.SET_ORDER,), _all_roots(ctx),
        hint="set iteration order depends on hash seeds and insertion "
             "history; iterate sorted(the_set) when elements escape")


@register("D006", kind="static")
def check_object_identity(ctx: Any) -> Iterator[Diagnostic]:
    """id()/hash() feeding results reachable from a root."""
    if not _is_static(ctx):
        return
    yield from _effect_diagnostics(
        ctx, "D006", (Effect.OBJECT_IDENTITY,), _all_roots(ctx),
        hint="id() is an address and str hashes are salted per process; "
             "key on stable content (names, indices) instead")
