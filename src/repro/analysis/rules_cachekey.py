"""C-codes: cache-key soundness of the content-addressed artifact store.

A content-addressed cache is only correct when the key hashes *every*
input the cached computation reads.  The manifest
(:data:`repro.io.artifacts.STAGE_KEY_MANIFEST`) declares, per artifact
kind, which parameter-dataclass fields the key folds in; these checks
diff that declaration against what the stage function's transitive
closure actually reads:

========  ====================================================================
C001      a parameter field the stage closure reads is **not** in the hashed
          manifest — two jobs differing only in that field would collide on
          one cache entry (stale-result reuse); ERROR
C002      a hashed field nothing in the closure reads — the key is
          over-constrained and equivalent jobs miss the cache; WARN
C003      the stage closure reads an *ambient* input that no key can see —
          ``os.environ`` or a module-level global that some function
          mutates; ERROR
========  ====================================================================

Field reads are traced through parameter passing and through the
parameter dataclass's own methods and properties (``job.label`` counts
as reading ``design``, ``policy`` and ``slack``), using the
:func:`repro.analysis.effects.param_attr_reads` fixpoint.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.analysis.callgraph import ProgramModel
from repro.analysis.effects import (Effect, param_attr_reads,
                                    transitive_origins)
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register


def stage_field_reads(program: ProgramModel, stage: str, params_param: str,
                      params_type: str) -> Optional[set[str]]:
    """Dataclass fields of ``params_type`` the stage closure reads.

    Direct attribute reads come from the parameter-read fixpoint;
    reads named after a method or property of the params class expand
    to that method's own ``self`` reads (transitively — the fixpoint
    already propagated ``self`` through method-to-method calls).
    Returns None when the stage or class is unknown to the program.
    """
    fn = program.functions.get(stage)
    cls = program.classes.get(params_type)
    if fn is None or cls is None or params_param not in fn.params:
        return None
    reads = param_attr_reads(program)
    raw = set(reads[stage].get(params_param, ()))
    # Method calls on the parameter recorded by the call collector:
    # p.method() binds p to the method's self.
    for site in fn.calls:
        if site.receiver_param == params_param \
                and site.receiver_method in cls.methods:
            raw.add(site.receiver_method)

    fields = set(cls.fields)
    expanded: set[str] = set()
    frontier = list(raw)
    seen: set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in fields:
            expanded.add(name)
        elif name in cls.methods:
            method_reads = reads.get(cls.methods[name], {}).get("self", set())
            frontier.extend(method_reads)
    return expanded


def _manifest_entries(ctx: Any) -> Iterator[tuple[ProgramModel, Any]]:
    program = getattr(ctx, "program", None)
    if program is None:
        return
    for entry in ctx.manifest:
        yield program, entry


@register("C001", kind="static")
def check_unhashed_reads(ctx: Any) -> Iterator[Diagnostic]:
    """Stage reads a parameter field the content key does not hash."""
    for program, entry in _manifest_entries(ctx):
        read = stage_field_reads(program, entry.stage, entry.params_param,
                                 entry.params_type)
        if read is None:
            continue  # static-config reports unresolvable manifest entries
        fn = program.functions[entry.stage]
        for name in sorted(read - set(entry.hashed_fields)):
            if ctx.suppressed("C001", fn.module, fn.lineno):
                continue
            yield Diagnostic(
                rule="C001", severity=Severity.ERROR,
                message=f"stage '{entry.stage}' reads "
                        f"{entry.params_type.rsplit('.', 1)[1]}.{name} but "
                        f"the '{entry.kind}' content key does not hash it — "
                        f"jobs differing only in '{name}' share one cache "
                        f"entry",
                obj=f"{fn.module}:{fn.lineno}",
                hint="add the field to the key parts (and to "
                     "STAGE_KEY_MANIFEST) or stop reading it")


@register("C002", kind="static")
def check_dead_hash_fields(ctx: Any) -> Iterator[Diagnostic]:
    """Content key hashes a parameter field the stage never reads."""
    for program, entry in _manifest_entries(ctx):
        read = stage_field_reads(program, entry.stage, entry.params_param,
                                 entry.params_type)
        if read is None:
            continue
        fn = program.functions[entry.stage]
        for name in sorted(set(entry.hashed_fields) - read):
            if ctx.suppressed("C002", fn.module, fn.lineno):
                continue
            yield Diagnostic(
                rule="C002", severity=Severity.WARN,
                message=f"'{entry.kind}' content key hashes "
                        f"{entry.params_type.rsplit('.', 1)[1]}.{name} but "
                        f"stage '{entry.stage}' never reads it — "
                        f"equivalent jobs needlessly miss the cache",
                obj=f"{fn.module}:{fn.lineno}",
                hint="normalise the field out of the key (see "
                     "PolicyParams.normalized) or drop it from the "
                     "manifest if a transitive read is simply invisible "
                     "to the analyzer")


@register("C003", kind="static")
def check_ambient_inputs(ctx: Any) -> Iterator[Diagnostic]:
    """Stage closure reads ambient state no content key can hash."""
    seen: set[tuple[str, int, str]] = set()
    for program, entry in _manifest_entries(ctx):
        if entry.stage not in program.functions:
            continue
        origins = transitive_origins(
            program, entry.stage,
            (Effect.ENV_READ, Effect.MUTABLE_GLOBAL_READ))
        for item in origins:
            origin = item.origin
            key = (origin.module, origin.lineno, origin.detail)
            if key in seen:
                continue
            seen.add(key)
            if ctx.suppressed("C003", origin.module, origin.lineno):
                continue
            source = (f"environment variable {origin.env_var!r}"
                      if origin.env_var is not None else origin.detail)
            yield Diagnostic(
                rule="C003", severity=Severity.ERROR,
                message=f"'{entry.kind}' stage closure reads {source}, "
                        f"which the content key cannot hash "
                        f"[reached via "
                        f"{' -> '.join(item.path[-3:])}]",
                obj=f"{origin.module}:{origin.lineno}",
                hint="pass the value in through the hashed stage "
                     "parameters, or suppress with a rationale if it "
                     "provably never alters artifact content")
