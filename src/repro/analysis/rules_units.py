"""Q/U-codes: physical-dimension soundness of the coherent unit system.

The Q family is the output of the interprocedural dimension inference
(:mod:`repro.analysis.dimensions`): every expression gets a point of
the :class:`repro.units.Dim` lattice, seeded from ``Annotated[float,
Dim.X]`` signatures, the :data:`repro.units.DIMENSIONS` manifest and
the named unit constants, and propagated through arithmetic, numpy
elementwise ops and call edges to fixpoint.

========  ====================================================================
Q001      add/subtract/compare mixes two different concrete dimensions
          (``cap + slew``), or a return value contradicts the declared
          ``Annotated`` return dimension; ERROR
Q002      a dimensioned value is scaled by an unnamed ``1000.0``/``0.001``
          conversion literal — the dimension survives but the *unit*
          silently changes scale (the interprocedural strengthening of
          U002); ERROR
Q003      a call site passes a dimension the parameter annotation
          contradicts; reciprocal pairs (time vs. frequency, energy vs.
          power) are called out by name; ERROR
Q004      coverage ratchet: a public signature slot in the declared
          signature roots is a bare ``float`` although the DIMENSIONS
          manifest types its name (INFO per slot, plus one coverage
          gauge; ERROR when coverage drops below 90%)
Q005      a manifest-declared field (``spec.clock_period``,
          ``data["period_ps"]``) is consumed by a parameter declared
          with a *different* dimension — the declaration and the use
          disagree; ERROR
========  ====================================================================

The U family is the older, purely lexical unit hygiene that used to
live in ``tools/lint_units.py`` (that file is now a thin shim over
this module):

========  ====================================================================
U001      float-literal equality (``x == 0.0``) on physical quantities:
          exact comparison turns into "never"/"always" under round-off;
          ERROR
U002      magic conversion constant ``1000.0``/``0.001`` outside
          ``repro/units.py``: a milli/kilo conversion hiding from the
          unit system; ERROR
========  ====================================================================

All codes honor ``# static: ok[CODE] rationale`` suppressions; the U
scanners additionally honor the legacy ``# lint-units: ok`` marker so
external checkouts migrate at their own pace.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.analysis.dimensions import (CONVERSION_LITERAL_VALUES,
                                       DimConfig, DimensionAnalysis,
                                       DimFinding)
from repro.analysis.report import SUPPRESS_RE
from repro.units import DIM_NAMES, Dim
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register

#: Q004 ratchet: the fraction of public unit-bearing signature slots
#: that must carry a dimension annotation.
Q004_COVERAGE_THRESHOLD = 0.9

#: Legacy suppression marker of the standalone unit linter; still
#: honored alongside ``# static: ok[U00x]``.
SUPPRESS_MARKER = "lint-units: ok"

#: Float literals that duplicate repro.units conversion constants
#: (1e3 == 1000.0 and 1e-3 == 0.001 compare equal, so two entries
#: cover all four spellings).  Tolerances like 1e-6/1e-9 are not unit
#: conversions and stay legal.  Defined once in
#: :mod:`repro.analysis.dimensions`, shared by Q002 and U002.
CONVERSION_LITERALS: Tuple[float, ...] = CONVERSION_LITERAL_VALUES

#: Files whose whole purpose is defining the conversion constants.
EXEMPT_FILES: Tuple[str, ...] = ("units.py",)

#: Trees linted when the standalone CLI is given no paths, relative to
#: the repo root.
DEFAULT_TREES: Tuple[str, ...] = ("src", "tools", "benchmarks")


# -- shared Q-analysis plumbing ----------------------------------------------


def _dim_analysis(ctx: Any) -> Optional[DimensionAnalysis]:
    """The (cached) whole-program dimension analysis for ``ctx``."""
    program = getattr(ctx, "program", None)
    if program is None:
        return None
    cached = program.caches.get("dim_analysis")
    if not isinstance(cached, DimensionAnalysis):
        config = DimConfig(
            manifest=dict(getattr(ctx, "dimensions_manifest", None) or {}),
            unit_constants=dict(getattr(ctx, "unit_constants", None) or {}),
            signature_roots=tuple(
                getattr(ctx, "dim_signature_roots", None) or ()))
        cached = DimensionAnalysis(program, config)
        program.caches["dim_analysis"] = cached
    return cached


def _dim_findings(ctx: Any, code: str) -> List[DimFinding]:
    analysis = _dim_analysis(ctx)
    if analysis is None:
        return []
    return [f for f in analysis.findings
            if f.code == code and not ctx.suppressed(code, f.module,
                                                     f.lineno)]


def _dim_attr(dim: Dim) -> str:
    """The ``Dim.NAME`` spelling of a named dimension, for hints."""
    for name, value in DIM_NAMES.items():
        if value == dim:
            return f"Dim.{name}"
    return f"<Dim {dim.label()}>"  # pragma: no cover - manifest uses names


def _as_diagnostic(finding: DimFinding) -> Diagnostic:
    return Diagnostic(
        rule=finding.code, severity=Severity.ERROR,
        message=finding.message,
        obj=f"{finding.module}:{finding.lineno}",
        hint=finding.hint)


@register("Q001", kind="static")
def check_dimension_mismatch(ctx: Any) -> Iterator[Diagnostic]:
    """Add/subtract/compare mixes two different concrete dimensions."""
    for finding in _dim_findings(ctx, "Q001"):
        yield _as_diagnostic(finding)


@register("Q002", kind="static")
def check_unnamed_conversion(ctx: Any) -> Iterator[Diagnostic]:
    """A dimensioned value is scaled by a magic conversion literal."""
    for finding in _dim_findings(ctx, "Q002"):
        yield _as_diagnostic(finding)


@register("Q003", kind="static")
def check_call_dimension(ctx: Any) -> Iterator[Diagnostic]:
    """A call site passes a dimension the parameter contradicts."""
    for finding in _dim_findings(ctx, "Q003"):
        yield _as_diagnostic(finding)


@register("Q005", kind="static")
def check_manifest_field_use(ctx: Any) -> Iterator[Diagnostic]:
    """A DIMENSIONS-declared field is consumed under another dimension."""
    for finding in _dim_findings(ctx, "Q005"):
        yield _as_diagnostic(finding)


@register("Q004", kind="static")
def check_signature_coverage(ctx: Any) -> Iterator[Diagnostic]:
    """Public unit-bearing signatures carry dimension annotations."""
    analysis = _dim_analysis(ctx)
    if analysis is None:
        return
    total = analysis.covered + len(analysis.gaps)
    if total == 0:
        return
    gaps = [g for g in analysis.gaps
            if not ctx.suppressed("Q004", g.module, g.lineno)]
    for gap in gaps:
        yield Diagnostic(
            rule="Q004", severity=Severity.INFO,
            message=f"public slot '{gap.slot}' of {gap.function} is a "
                    f"bare float although the DIMENSIONS manifest "
                    f"declares '{gap.dim.label()}' for that name",
            obj=f"{gap.module}:{gap.lineno}",
            hint=f"annotate as Annotated[float, {_dim_attr(gap.dim)}]")
    covered = total - len(gaps)
    ratio = covered / total
    yield Diagnostic(
        rule="Q004", severity=Severity.INFO,
        message=f"dimension annotation coverage {ratio:.1%} "
                f"({covered}/{total} public unit-bearing slots)",
        hint="the Q004 gauge; the ratchet fails below "
             f"{Q004_COVERAGE_THRESHOLD:.0%}")
    if ratio < Q004_COVERAGE_THRESHOLD:
        yield Diagnostic(
            rule="Q004", severity=Severity.ERROR,
            message=f"dimension annotation coverage {ratio:.1%} is below "
                    f"the {Q004_COVERAGE_THRESHOLD:.0%} ratchet "
                    f"({len(gaps)} public unit-bearing slots lack "
                    f"annotations)",
            hint="annotate the slots listed above (or suppress with a "
                 "rationale where the manifest name collides)")


# -- U001/U002: lexical unit hygiene -----------------------------------------


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and _is_float_literal(node.operand))


def _literal_value(node: ast.expr) -> float:
    if isinstance(node, ast.Constant):
        value = node.value
        if not isinstance(value, float):
            raise TypeError(f"not a float literal: {value!r}")
        return value
    if isinstance(node, ast.UnaryOp) and _is_float_literal(node.operand):
        inner = _literal_value(node.operand)
        return -inner if isinstance(node.op, ast.USub) else inner
    raise TypeError(f"not a float literal: {ast.dump(node)}")


def _marker_suppressed(source_lines: Sequence[str], rule: str,
                       lineno: int) -> bool:
    """Inline suppression: legacy marker or ``# static: ok[U00x]``."""
    if lineno < 1 or lineno > len(source_lines):
        return False
    text = source_lines[lineno - 1]
    if SUPPRESS_MARKER in text:
        return True
    match = SUPPRESS_RE.search(text)
    return match is not None and rule in {
        code.strip() for code in match.group(1).split(",")}


def _scan_tree(tree: ast.AST, *, exempt_conversions: bool,
               suppressed: Callable[[str, int], bool],
               ) -> Iterator[Tuple[int, int, str, str]]:
    """U001/U002 hits as ``(lineno, col, rule, message)`` tuples."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next((o for o in (left, right)
                                if _is_float_literal(o)), None)
                if literal is None or suppressed("U001", node.lineno):
                    continue
                yield (node.lineno, node.col_offset, "U001",
                       f"float-literal equality (== / != with "
                       f"{_literal_value(literal)!r}); use an ordering "
                       f"comparison, a tolerance, or a predicate "
                       f"[suppress: # static: ok[U001] <why>]")
        elif (isinstance(node, ast.Constant)
              and isinstance(node.value, float)
              and not exempt_conversions
              and node.value in CONVERSION_LITERALS
              and not suppressed("U002", node.lineno)):
            yield (node.lineno, node.col_offset, "U002",
                   f"magic unit-conversion constant {node.value!r}; use "
                   f"the named constant from repro.units "
                   f"[suppress: # static: ok[U002] <why>]")


def _unit_hygiene(ctx: Any) -> List[Tuple[str, int, int, str, str]]:
    """(module, lineno, col, rule, message) hits across the program."""
    program = getattr(ctx, "program", None)
    if program is None:
        return []
    cached = program.caches.get("unit_hygiene")
    if not isinstance(cached, list):
        cached = []
        for module in program.modules.values():
            try:
                tree = ast.parse("\n".join(module.source_lines))
            except SyntaxError:  # pragma: no cover - parsed once already
                continue

            def marker(rule: str, lineno: int,
                       lines: Sequence[str] = module.source_lines) -> bool:
                return _marker_suppressed(lines, rule, lineno)

            for lineno, col, rule, message in _scan_tree(
                    tree,
                    exempt_conversions=module.path.name in EXEMPT_FILES,
                    suppressed=marker):
                cached.append((module.name, lineno, col, rule, message))
        program.caches["unit_hygiene"] = cached
    return cached


def _hygiene_diagnostics(ctx: Any, rule: str) -> Iterator[Diagnostic]:
    for module, lineno, _col, hit_rule, message in _unit_hygiene(ctx):
        if hit_rule == rule and not ctx.suppressed(rule, module, lineno):
            yield Diagnostic(
                rule=rule, severity=Severity.ERROR, message=message,
                obj=f"{module}:{lineno}",
                hint="see the U-code catalogue in docs/VERIFY.md")


@register("U001", kind="static")
def check_float_equality(ctx: Any) -> Iterator[Diagnostic]:
    """Float-literal equality on physical quantities."""
    yield from _hygiene_diagnostics(ctx, "U001")


@register("U002", kind="static")
def check_conversion_literal(ctx: Any) -> Iterator[Diagnostic]:
    """Magic 1000.0/0.001 conversion constants outside repro.units."""
    yield from _hygiene_diagnostics(ctx, "U002")


# -- standalone path-based API (tools/lint_units.py shim) --------------------


def default_paths() -> List[Path]:
    """The repo's lintable trees, skipping any that do not exist."""
    root = Path(__file__).resolve().parents[3]
    return [root / tree for tree in DEFAULT_TREES if (root / tree).is_dir()]


@dataclass(frozen=True)
class Finding:
    """One standalone-linter hit."""

    path: Path
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")


def lint_file(path: Path) -> List[Finding]:
    """Lint one Python file; returns its findings (possibly empty)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, "U000",
                        f"syntax error: {exc.msg}")]
    lines = source.splitlines()

    def marker(rule: str, lineno: int) -> bool:
        return _marker_suppressed(lines, rule, lineno)

    hits = _scan_tree(tree, exempt_conversions=path.name in EXEMPT_FILES,
                      suppressed=marker)
    return sorted((Finding(path, line, col, rule, message)
                   for line, col, rule, message in hits),
                  key=lambda f: (f.line, f.col, f.rule))


def lint_paths(paths: Sequence[Path]) -> List[Finding]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[Finding] = []
    for file in files:
        findings.extend(lint_file(file))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone CLI (``python tools/lint_units.py``); exit 1 on hits."""
    parser = argparse.ArgumentParser(
        description="unit-hygiene linter (U001 float-literal equality, "
                    "U002 magic unit-conversion constants); the full "
                    "dimension inference (Q codes) runs via "
                    "'repro lint --static'")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the repo's src, tools and "
                             "benchmarks trees)")
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths or default_paths())
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
