"""I-codes: mutation→invalidation pairing of compiled engine state.

The incremental engine (PR 6) keeps compiled CSR arenas and derived
caches coherent by hand: every write of a guarded arena field must be
paired with the matching invalidation, and every public analysis entry
must pass the recompile barrier before reading state a pending
mutation may have doomed.  :mod:`repro.engine.invariants` *declares*
those pairings; this module proves them over the AST:

========  ====================================================================
I001      a guarded-field write (direct, or via a private writer method)
          not post-dominated by the paired invalidation — some path can
          reach function exit with stale derived caches
I002      manifest drift: a declared invalidator/barrier that is not a
          method of the class, or a declared guarded field no method
          ever writes (dead guard)
I003      a public method whose transitive self-call closure reads
          guarded state without mentioning the recompile barrier or the
          stale flag — it can observe doomed compiled state
========  ====================================================================

"Post-dominated" is structural (:func:`repro.analysis.effects.
statement_postdominated`): every control-flow path from just after the
write must hit an invalidation statement before leaving the method.
Invalidation statements are ``self.<invalidator>()`` calls,
``self.<cache_attr> = None`` drops, and ``self.<stale_flag> = True``
marks.  Suppress a deliberate occurrence with
``# static: ok[CODE] rationale`` on the reported line.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.analysis.callgraph import ClassInfo, FunctionInfo, ProgramModel
from repro.analysis.effects import statement_postdominated
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register

if TYPE_CHECKING:  # the analyzer stays AST-pure: no engine import at runtime
    from repro.engine.invariants import StateInvariant

SatPredicate = Callable[[ast.stmt], bool]


def _invariant_classes(
        ctx: Any) -> Iterator[tuple[ProgramModel, StateInvariant, ClassInfo]]:
    """(program, invariant, class) for each declared class that exists."""
    program = getattr(ctx, "program", None)
    if program is None:
        return
    for inv in getattr(ctx, "invariants", ()):
        cls = program.classes.get(inv.cls)
        if cls is not None:  # unknown classes -> static-config
            yield program, inv, cls


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.x`` -> ``"x"`` (unwrapping subscripts), else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _guarded_writes(fn: FunctionInfo,
                    fields: frozenset[str]) -> list[tuple[ast.stmt, str]]:
    """(statement, field) for each write of a guarded ``self`` field."""
    writes: list[tuple[ast.stmt, str]] = []
    for node in ast.walk(fn.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None and attr in fields:
                writes.append((node, attr))  # type: ignore[arg-type]
    return writes


def _sat_predicate(inv: StateInvariant) -> SatPredicate:
    """A statement that counts as the invariant's paired invalidation."""
    invalidators = set(inv.invalidators)
    cache_attrs = set(inv.cache_attrs)

    def is_sat(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in invalidators):
                return True
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                value = stmt.value
                if (attr in cache_attrs
                        and isinstance(value, ast.Constant)
                        and value.value is None):
                    return True
                if (inv.stale_flag is not None and attr == inv.stale_flag
                        and isinstance(value, ast.Constant)
                        and value.value is True):
                    return True
        return False

    return is_sat


_BODY_FIELDS = ("body", "orelse", "finalbody")


def _stmt_containing(body: list[ast.stmt],
                     node: ast.AST) -> Optional[ast.stmt]:
    """The innermost statement in ``body`` whose subtree holds ``node``."""
    for stmt in body:
        inner_bodies: list[list[ast.stmt]] = [
            getattr(stmt, name) for name in _BODY_FIELDS
            if getattr(stmt, name, None)]
        for handler in getattr(stmt, "handlers", ()):
            inner_bodies.append(handler.body)
        for inner in inner_bodies:
            found = _stmt_containing(inner, node)
            if found is not None:
                return found
        if any(sub is node for sub in ast.walk(stmt)):
            return stmt
    return None


def _writer_call_sites(program: ProgramModel, cls: ClassInfo,
                       writer: str) -> Iterator[tuple[FunctionInfo, ast.stmt]]:
    """(caller, statement) for every in-class ``self.<writer>(...)`` call."""
    for method_name, qualname in cls.methods.items():
        if method_name == writer:
            continue
        caller = program.functions.get(qualname)
        if caller is None:
            continue
        for node in ast.walk(caller.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr == writer):
                stmt = _stmt_containing(caller.node.body, node)
                if stmt is not None:
                    yield caller, stmt


@register("I001", kind="static")
def check_unpaired_writes(ctx: Any) -> Iterator[Diagnostic]:
    """Guarded-field writes not post-dominated by the paired invalidation."""
    for program, inv, cls in _invariant_classes(ctx):
        fields = frozenset(inv.guarded_fields)
        skip = set(inv.exempt) | set(inv.invalidators)
        if inv.barrier is not None:
            skip.add(inv.barrier)
        is_sat = _sat_predicate(inv)
        pairing = (f"self.{inv.invalidators[0]}()" if inv.invalidators
                   else "a cache drop (self.<cache> = None)")
        for method_name in sorted(cls.methods):
            if method_name in skip:
                continue
            fn = program.functions.get(cls.methods[method_name])
            if fn is None:
                continue
            bad = [(stmt, attr)
                   for stmt, attr in _guarded_writes(fn, fields)
                   if not statement_postdominated(fn.node.body, stmt, is_sat)]
            if not bad:
                continue
            if method_name.startswith("_"):
                # Private writer: sound iff every in-class call site is
                # itself post-dominated by the invalidation (or lives in
                # an exempt method such as the compile path).
                sites = list(_writer_call_sites(program, cls, method_name))
                unpaired = [
                    (caller, stmt) for caller, stmt in sites
                    if caller.name not in skip
                    and not statement_postdominated(
                        caller.node.body, stmt, is_sat)]
                if sites and not unpaired:
                    continue
                for caller, stmt in unpaired:
                    if ctx.suppressed("I001", caller.module, stmt.lineno):
                        continue
                    yield Diagnostic(
                        rule="I001", severity=Severity.ERROR,
                        message=f"{cls.name}.{caller.name} calls guarded "
                                f"writer {method_name}() on a path not "
                                f"post-dominated by {pairing}",
                        obj=f"{caller.module}:{stmt.lineno}",
                        hint=f"every call of {cls.name}.{method_name} must "
                             f"be followed by {pairing} on all paths to "
                             f"exit, or the caller must be listed as "
                             f"exempt in the invariant manifest")
                if sites:
                    continue
            for stmt, attr in bad:
                if ctx.suppressed("I001", fn.module, stmt.lineno):
                    continue
                yield Diagnostic(
                    rule="I001", severity=Severity.ERROR,
                    message=f"{cls.name}.{method_name} writes guarded "
                            f"field '{attr}' on a path not post-dominated "
                            f"by {pairing}",
                    obj=f"{fn.module}:{stmt.lineno}",
                    hint="pair every guarded mutation with the declared "
                         "invalidation before returning — a missed pair "
                         "leaves derived caches describing pre-mutation "
                         "state (see repro.engine.invariants)")


@register("I002", kind="static")
def check_dead_guards(ctx: Any) -> Iterator[Diagnostic]:
    """Manifest drift: invalidators/fields the class no longer backs."""
    for program, inv, cls in _invariant_classes(ctx):
        for name in (*inv.invalidators,
                     *((inv.barrier,) if inv.barrier else ())):
            if name not in cls.methods:
                if ctx.suppressed("I002", cls.module, cls.lineno):
                    continue
                yield Diagnostic(
                    rule="I002", severity=Severity.ERROR,
                    message=f"invariant for {cls.name} declares "
                            f"'{name}' but the class defines no such "
                            f"method",
                    obj=f"{cls.module}:{cls.lineno}",
                    hint="update ENGINE_STATE_INVARIANTS after renaming "
                         "invalidator/barrier methods")
        written: set[str] = set()
        for qualname in cls.methods.values():
            fn = program.functions.get(qualname)
            if fn is not None:
                written.update(
                    attr for _, attr in _guarded_writes(
                        fn, frozenset(inv.guarded_fields)))
        for field_name in inv.guarded_fields:
            if field_name not in written:
                if ctx.suppressed("I002", cls.module, cls.lineno):
                    continue
                yield Diagnostic(
                    rule="I002", severity=Severity.ERROR,
                    message=f"invariant for {cls.name} guards field "
                            f"'{field_name}' but no method ever writes "
                            f"it (dead guard)",
                    obj=f"{cls.module}:{cls.lineno}",
                    hint="dead guard entries hide real drift — drop the "
                         "field from the manifest or restore the write")


def _guarded_readers(program: ProgramModel, cls: ClassInfo,
                     guarded: frozenset[str]) -> set[str]:
    """Methods whose transitive self-call closure reads guarded state."""
    reads: set[str] = set()
    self_calls: dict[str, set[str]] = {}
    for method_name, qualname in cls.methods.items():
        fn = program.functions.get(qualname)
        if fn is None:
            continue
        called: set[str] = set()
        for node in ast.walk(fn.node):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                if isinstance(node.ctx, ast.Load) and node.attr in guarded:
                    reads.add(method_name)
                if node.attr in cls.methods:
                    called.add(node.attr)
        self_calls[method_name] = called
    changed = True
    while changed:
        changed = False
        for method_name, called in self_calls.items():
            if method_name not in reads and called & reads:
                reads.add(method_name)
                changed = True
    return reads


def _mentions_barrier(fn: FunctionInfo, inv: StateInvariant) -> bool:
    """The method body calls the barrier or tests/sets the stale flag."""
    for node in ast.walk(fn.node):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in (inv.barrier, inv.stale_flag)):
            return True
    return False


@register("I003", kind="static")
def check_stale_reads(ctx: Any) -> Iterator[Diagnostic]:
    """Public guarded-state reads with no recompile barrier in sight."""
    for program, inv, cls in _invariant_classes(ctx):
        if inv.stale_flag is None or inv.barrier is None:
            continue
        guarded = frozenset((*inv.guarded_fields, *inv.cache_attrs))
        readers = _guarded_readers(program, cls, guarded)
        for method_name in sorted(cls.methods):
            if method_name.startswith("_") or method_name in inv.exempt:
                continue
            if method_name not in readers:
                continue
            fn = program.functions.get(cls.methods[method_name])
            if fn is None or _mentions_barrier(fn, inv):
                continue
            if ctx.suppressed("I003", fn.module, fn.lineno):
                continue
            yield Diagnostic(
                rule="I003", severity=Severity.ERROR,
                message=f"{cls.name}.{method_name} reads guarded state "
                        f"but neither calls self.{inv.barrier}() nor "
                        f"tests self.{inv.stale_flag} — it can observe "
                        f"doomed compiled state",
                obj=f"{fn.module}:{fn.lineno}",
                hint=f"call self.{inv.barrier}() on entry (or guard on "
                     f"self.{inv.stale_flag}) before touching arena "
                     f"fields or derived caches")
