"""Flow-sensitive, interprocedural physical-dimension inference.

Every quantity in this library is a plain ``float`` in the coherent
unit system of :mod:`repro.units`; nothing at runtime stops a frequency
from flowing into a period slot or a pF value from being added to an
fF total.  This module types the physics statically: an abstract
interpreter over the :class:`~repro.analysis.callgraph.ProgramModel`
assigns every expression a point of the :class:`repro.units.Dim`
lattice and propagates it

* through arithmetic with product/quotient exponent algebra
  (``R * C -> time``, ``C * V**2 -> energy``, ``energy * f -> power``,
  ``1 / time -> frequency``),
* through numpy elementwise ops and reductions (the batched engine's
  CSR arenas carry the dimension of their elements),
* across calls, to a fixpoint: a function's return dimension is the
  join of its return expressions under the current summaries, and
  annotated parameters type-check every call site.

Dimensions are *seeded* from three declarative sources, in priority
order:

1. ``Annotated[float, Dim.X]`` signature annotations (and dataclass
   field annotations) on public boundaries;
2. the :data:`repro.units.DIMENSIONS` manifest — field/parameter/key
   names with a declared dimension (``vdd`` is a voltage wherever it
   appears as an attribute, mapping key or parameter name);
3. the :data:`repro.units.UNIT_DIMENSIONS` table — multiplying by a
   named unit constant (``3.0 * NS``) tags the product.

Numeric literals are dimension *chameleons*: ``total = 0.0`` then
``total += cap`` infers capacitance without a false mismatch, but two
non-literal operands of different concrete dimensions are reported.
``Dim.TOP`` (unknown) absorbs every operation — an unknown can never
launder into a concrete dimension, so every finding rests on a chain
of declared facts.  The Q-rules in
:mod:`repro.analysis.rules_units` turn the collected
:class:`DimFinding` records into registry diagnostics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.callgraph import (FunctionInfo, ModuleInfo, ProgramModel,
                                      _CallCollector, _dotted_name)
from repro.units import DIM_NAMES, Dim

#: Fixpoint pass cap: dimension summaries converge in 2-3 passes on
#: this codebase; the cap only guards against a pathological cycle.
MAX_FIXPOINT_PASSES = 8

#: Literals that smell like milli/kilo conversions (matches the U002
#: rule); multiplying a *dimensioned* value by one is a Q002 finding.
CONVERSION_LITERAL_VALUES: Tuple[float, ...] = (
    1000.0, 0.001)  # static: ok[U002] the rule's own definition

#: The reciprocal / rate confusion pairs Q003 calls out by name.
_CONFUSION_PAIRS: Tuple[Tuple[Dim, Dim, str], ...] = (
    (Dim.TIME, Dim.FREQUENCY, "frequency/period confusion"),
    (Dim.ENERGY, Dim.POWER, "energy/power confusion"),
)


@dataclass(frozen=True)
class DimConfig:
    """Everything one dimension-inference run is seeded with."""

    #: field / parameter / mapping-key name -> declared dimension.
    manifest: Mapping[str, Dim] = field(default_factory=dict)
    #: fully-qualified constant name -> dimension
    #: (``"repro.units.NS" -> Dim.TIME``).
    unit_constants: Mapping[str, Dim] = field(default_factory=dict)
    #: module-name prefixes whose public signatures the Q004 coverage
    #: ratchet applies to.
    signature_roots: Tuple[str, ...] = ()


@dataclass(frozen=True)
class AbsVal:
    """Abstract value: a lattice point plus literal provenance.

    ``literal`` marks values derived purely from numeric literals
    (``0.0``, ``[0.0] * n``, ``np.zeros(...)``); they unify with any
    dimension instead of raising a mismatch, so accumulator seeds and
    tolerance guards stay silent.
    """

    dim: Dim
    literal: bool = False


_TOP = AbsVal(Dim.TOP)
_LIT = AbsVal(Dim.DIMENSIONLESS, literal=True)


@dataclass(frozen=True)
class DimFinding:
    """One raw inference finding, before registry filtering."""

    code: str
    module: str
    lineno: int
    function: str
    message: str
    hint: str = ""


@dataclass(frozen=True)
class SignatureGap:
    """One public unit-bearing signature slot lacking an annotation."""

    function: str
    module: str
    lineno: int
    slot: str       # parameter name, or "return"
    dim: Dim        # the dimension the manifest declares for the name


def annotation_dim(node: Optional[ast.expr]) -> Optional[Dim]:
    """The ``Dim.X`` member named inside an annotation expression.

    Recognises ``Annotated[float, Dim.TIME]`` (and any other position
    of a ``Dim.X`` attribute inside the annotation), including the
    string form dataclass collectors keep.  Returns ``None`` when the
    annotation carries no dimension marker.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in DIM_NAMES:
            base = _dotted_name(sub.value)
            if base is not None and base.split(".")[-1] == "Dim":
                return DIM_NAMES[sub.attr]
    return None


def annotation_dim_source(source: str) -> Optional[Dim]:
    """:func:`annotation_dim` over an annotation's source text."""
    try:
        return annotation_dim(ast.parse(source, mode="eval").body)
    except SyntaxError:
        return None


def _literal_float(node: ast.expr) -> Optional[float]:
    """Value of a (possibly sign-prefixed) numeric literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub,
                                                              ast.UAdd)):
        inner = _literal_float(node.operand)
        if inner is not None:
            return -inner if isinstance(node.op, ast.USub) else inner
    return None


#: External calls that return their first argument's dimension
#: (reductions and casts over containers are elementwise: a vector of
#: delays reduces to a delay).
_PRESERVE_FIRST = frozenset({
    "builtins.abs", "builtins.sum", "builtins.sorted", "builtins.float",
    "builtins.round", "math.fsum", "math.fabs", "numpy.sum", "numpy.abs",
    "numpy.absolute", "numpy.asarray", "numpy.array", "numpy.sort",
    "numpy.cumsum", "numpy.mean", "numpy.median", "numpy.std",
    "numpy.ravel", "numpy.copy", "numpy.ascontiguousarray",
    "numpy.atleast_1d", "numpy.percentile", "numpy.quantile",
    "numpy.repeat", "numpy.tile", "numpy.diff", "numpy.flip",
    "numpy.ptp", "numpy.take", "numpy.broadcast_to",
})

#: External calls whose result joins every argument's dimension.
_JOIN_ARGS = frozenset({
    "builtins.min", "builtins.max", "numpy.maximum", "numpy.minimum",
    "numpy.max", "numpy.min", "numpy.amax", "numpy.amin", "numpy.hypot",
    "numpy.concatenate", "numpy.append", "numpy.clip", "numpy.fmax",
    "numpy.fmin",
})

_SQRT = frozenset({"math.sqrt", "numpy.sqrt"})
_MUL_ARGS = frozenset({"numpy.multiply", "numpy.dot", "numpy.outer",
                       "numpy.matmul", "math.prod"})
_DIV_ARGS = frozenset({"numpy.divide", "numpy.true_divide"})
_ADD_ARGS = frozenset({"numpy.add", "numpy.subtract"})

#: External calls producing dimension-chameleon (literal) scalars or
#: arrays: sizes, counts, fresh zero-filled accumulators.
_LITERAL_RESULTS = frozenset({
    "builtins.len", "builtins.int", "builtins.bool", "numpy.zeros",
    "numpy.ones", "numpy.empty", "numpy.arange", "numpy.argsort",
    "numpy.argmax", "numpy.argmin", "numpy.count_nonzero",
    "numpy.searchsorted", "numpy.sign", "numpy.eye",
})


class DimensionAnalysis:
    """One whole-program dimension-inference run.

    Construction runs the fixpoint and the reporting pass; the results
    are the :attr:`findings` list (Q001/Q002/Q003/Q005 raw findings)
    and the Q004 :attr:`gaps` / :attr:`covered` signature-coverage
    tallies.
    """

    def __init__(self, program: ProgramModel, config: DimConfig) -> None:
        self.program = program
        self.config = config
        #: function qualname -> parameter name -> seeded dimension.
        self.param_dims: Dict[str, Dict[str, Dim]] = {}
        #: function qualname -> declared (annotated) return dimension.
        self.return_declared: Dict[str, Optional[Dim]] = {}
        #: function qualname -> inferred return dimension (fixpoint).
        self.return_inferred: Dict[str, Dim] = {}
        #: class qualname -> field name -> dimension (Annotated fields).
        self.field_dims: Dict[str, Dict[str, Dim]] = {}
        self.findings: List[DimFinding] = []
        self.gaps: List[SignatureGap] = []
        self.covered: int = 0
        self._resolvers: Dict[str, _CallCollector] = {}
        self._module_consts: Dict[str, Dict[str, AbsVal]] = {}
        self._seed()
        self._fixpoint()
        self._report()
        self._coverage()

    # -- seeding -------------------------------------------------------------

    def _seed(self) -> None:
        manifest = self.config.manifest
        for qualname, fn in self.program.functions.items():
            dims: Dict[str, Dim] = {}
            for arg in self._all_args(fn):
                dim = annotation_dim(arg.annotation)
                if dim is None:
                    dim = manifest.get(arg.arg, Dim.TOP)
                dims[arg.arg] = dim
            if fn.params[:1] in (("self",), ("cls",)):
                dims[fn.params[0]] = Dim.TOP
            self.param_dims[qualname] = dims
            self.return_declared[qualname] = annotation_dim(fn.node.returns)
            self.return_inferred[qualname] = Dim.BOTTOM
        for qualname, cls in self.program.classes.items():
            dims = {}
            for name, source in cls.field_annotations.items():
                dim = annotation_dim_source(source)
                if dim is not None:
                    dims[name] = dim
            if dims:
                self.field_dims[qualname] = dims

    @staticmethod
    def _all_args(fn: FunctionInfo) -> List[ast.arg]:
        args = fn.node.args
        return [*args.posonlyargs, *args.args, *args.kwonlyargs]

    def _resolver(self, fn: FunctionInfo) -> _CallCollector:
        cached = self._resolvers.get(fn.qualname)
        if cached is None:
            module = self.program.modules[fn.module]
            cached = _CallCollector(self.program, module, fn)
            self._resolvers[fn.qualname] = cached
        return cached

    def _module_constants(self, module: ModuleInfo) -> Dict[str, AbsVal]:
        """Module-level ``NAME = <numeric literal>`` bindings."""
        cached = self._module_consts.get(module.name)
        if cached is None:
            cached = {}
            try:
                tree = ast.parse("\n".join(module.source_lines))
            except SyntaxError:  # pragma: no cover - parsed once already
                tree = ast.Module(body=[], type_ignores=[])
            for stmt in tree.body:
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                if isinstance(target, ast.Name) and value is not None \
                        and _literal_float(value) is not None:
                    cached[target.id] = _LIT
            self._module_consts[module.name] = cached
        return cached

    # -- fixpoint + reporting ------------------------------------------------

    def return_summary(self, qualname: str, *, final: bool) -> Dim:
        """A callee's return dimension under the current summaries."""
        declared = self.return_declared.get(qualname)
        if declared is not None:
            return declared
        inferred = self.return_inferred.get(qualname, Dim.BOTTOM)
        if final and inferred == Dim.BOTTOM:
            return Dim.TOP
        return inferred

    def _fixpoint(self) -> None:
        for _ in range(MAX_FIXPOINT_PASSES):
            changed = False
            for qualname, fn in self.program.functions.items():
                result = _BodyEval(self, fn, report=False).run()
                if result != self.return_inferred[qualname]:
                    self.return_inferred[qualname] = result
                    changed = True
            if not changed:
                break

    def _report(self) -> None:
        seen: set[Tuple[str, str, int, str]] = set()
        for fn in self.program.functions.values():
            evaluator = _BodyEval(self, fn, report=True)
            evaluator.run()
            for finding in evaluator.findings:
                key = (finding.code, finding.module, finding.lineno,
                       finding.message)
                if key not in seen:
                    seen.add(key)
                    self.findings.append(finding)
        self.findings.sort(key=lambda f: (f.module, f.lineno, f.code))

    # -- Q004 signature coverage ---------------------------------------------

    def _public(self, fn: FunctionInfo) -> bool:
        if fn.name.startswith("_"):
            return False
        if fn.class_qualname is not None:
            cls = self.program.classes[fn.class_qualname]
            if cls.name.startswith("_"):
                return False
        return True

    def _in_signature_roots(self, module: str) -> bool:
        return any(module == root or module.startswith(root + ".")
                   for root in self.config.signature_roots)

    def _coverage(self) -> None:
        """Tally annotated vs. manifest-named-but-bare ``float`` slots."""
        manifest = self.config.manifest

        def bearing(name: str) -> Optional[Dim]:
            dim = manifest.get(name)
            if dim is not None and dim.is_concrete \
                    and not dim.is_dimensionless:
                return dim
            return None

        for fn in self.program.functions.values():
            if not self._in_signature_roots(fn.module) \
                    or not self._public(fn):
                continue
            for arg in self._all_args(fn):
                if arg.arg in ("self", "cls"):
                    continue
                if annotation_dim(arg.annotation) is not None:
                    self.covered += 1
                    continue
                if isinstance(arg.annotation, ast.Name) \
                        and arg.annotation.id == "float":
                    dim = bearing(arg.arg)
                    if dim is not None:
                        self.gaps.append(SignatureGap(
                            function=fn.qualname, module=fn.module,
                            lineno=fn.lineno, slot=arg.arg, dim=dim))
            returns = fn.node.returns
            if annotation_dim(returns) is not None:
                self.covered += 1
            elif isinstance(returns, ast.Name) and returns.id == "float":
                dim = bearing(fn.name)
                if dim is not None:
                    self.gaps.append(SignatureGap(
                        function=fn.qualname, module=fn.module,
                        lineno=fn.lineno, slot="return", dim=dim))


class _BodyEval:
    """Abstract interpretation of one function body.

    Statements execute in source order over a mutable environment
    (flow-sensitive in the straight-line sense: an assignment's
    dimension is visible to everything after it); compound statements
    share the environment, which over-approximates merges toward
    ``join`` at re-assignments.
    """

    def __init__(self, analysis: DimensionAnalysis, fn: FunctionInfo,
                 report: bool) -> None:
        self.a = analysis
        self.fn = fn
        self.report = report
        self.module = analysis.program.modules[fn.module]
        self.resolver = analysis._resolver(fn)
        self.env: Dict[str, AbsVal] = {
            name: AbsVal(dim)
            for name, dim in analysis.param_dims[fn.qualname].items()}
        self.return_dim = Dim.BOTTOM
        self.findings: List[DimFinding] = []

    def run(self) -> Dim:
        self._exec_block(self.fn.node.body)
        return self.return_dim

    # -- findings ------------------------------------------------------------

    def _emit(self, code: str, lineno: int, message: str,
              hint: str = "") -> None:
        if self.report:
            self.findings.append(DimFinding(
                code=code, module=self.fn.module, lineno=lineno,
                function=self.fn.qualname, message=message, hint=hint))

    # -- abstract arithmetic -------------------------------------------------

    def _add(self, left: AbsVal, right: AbsVal, lineno: int,
             what: str) -> AbsVal:
        da, db = left.dim, right.dim
        if da.special == "bottom" or db.special == "bottom":
            return AbsVal(da.join(db), left.literal and right.literal)
        if da.special == "top" or db.special == "top":
            return _TOP
        if da == db:
            return AbsVal(da, left.literal and right.literal)
        # Literal operands are chameleons: 0.0 + cap is a seeded
        # accumulator, not a mismatch.
        if left.literal:
            return AbsVal(db)
        if right.literal:
            return AbsVal(da)
        self._emit(
            "Q001", lineno,
            f"{what} mixes '{da.label()}' with '{db.label()}' in "
            f"{self.fn.qualname}",
            hint="operands of +/-/comparison must share a dimension; "
                 "convert explicitly with the repro.units constants or "
                 "fix the upstream quantity")
        return _TOP

    def _mul_like(self, left: AbsVal, right: AbsVal, *, divide: bool,
                  left_node: ast.expr, right_node: ast.expr,
                  lineno: int) -> AbsVal:
        self._check_conversion(left, right_node, lineno)
        self._check_conversion(right, left_node, lineno)
        dim = left.dim.div(right.dim) if divide else left.dim.mul(right.dim)
        return AbsVal(dim, left.literal and right.literal)

    def _check_conversion(self, value: AbsVal, other_node: ast.expr,
                          lineno: int) -> None:
        """Q002: a dimensioned value scaled by a magic 1e3/1e-3 literal."""
        literal = _literal_float(other_node)
        if literal is None or abs(literal) not in CONVERSION_LITERAL_VALUES:
            return
        if value.dim.is_concrete and not value.dim.is_dimensionless \
                and not value.literal:
            self._emit(
                "Q002", lineno,
                f"'{value.dim.label()}' value scaled by the unnamed "
                f"conversion constant {literal!r} in {self.fn.qualname} — "
                f"the dimension survives but the unit silently changes "
                f"scale",
                hint="spell the conversion with a named repro.units "
                     "constant (NS, PF, OHM, ...) so it stays greppable "
                     "and checkable")

    # -- statements ----------------------------------------------------------

    def _exec_block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_dim(stmt.annotation)
            value = self._eval(stmt.value) if stmt.value is not None else _TOP
            if declared is not None:
                value = AbsVal(declared)
            self._bind(stmt.target, value, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, _TOP)
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    result = self._add(current, value, stmt.lineno,
                                       "augmented assignment")
                elif isinstance(stmt.op, ast.Mult):
                    result = self._mul_like(
                        current, value, divide=False,
                        left_node=stmt.target, right_node=stmt.value,
                        lineno=stmt.lineno)
                elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
                    result = self._mul_like(
                        current, value, divide=True,
                        left_node=stmt.target, right_node=stmt.value,
                        lineno=stmt.lineno)
                else:
                    result = _TOP
                self.env[stmt.target.id] = result
            else:
                self._store_join(stmt.target, value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value)
                self.return_dim = self.return_dim.join(value.dim)
                declared = self.a.return_declared.get(self.fn.qualname)
                if declared is not None and declared.is_concrete \
                        and value.dim.is_concrete and not value.literal \
                        and value.dim != declared:
                    self._emit(
                        "Q001", stmt.lineno,
                        f"{self.fn.qualname} returns '{value.dim.label()}' "
                        f"where its signature declares "
                        f"'{declared.label()}'",
                        hint="fix the computation or the Annotated "
                             "return dimension")
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter)
            self._bind(stmt.target, iterable, None)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        # Imports, pass, global/nonlocal, nested defs: no dimensions.

    def _bind(self, target: ast.expr, value: AbsVal,
              value_node: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_node, (ast.Tuple, ast.List)) \
                    and len(value_node.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts,
                                                 value_node.elts):
                    self._bind(sub_target, self._eval(sub_value), sub_value)
            else:
                for sub_target in target.elts:
                    self._bind(sub_target, _TOP, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _TOP, None)
        else:
            self._store_join(target, value)

    def _store_join(self, target: ast.expr, value: AbsVal) -> None:
        """``arr[i] = v``: the container absorbs the element dimension."""
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.env:
            current = self.env[base.id]
            if current.literal:
                # A fresh zero-filled accumulator commits to the first
                # stored dimension.
                self.env[base.id] = AbsVal(value.dim, value.literal)
            else:
                self.env[base.id] = AbsVal(current.dim.join(value.dim))

    # -- expressions ---------------------------------------------------------

    def _eval(self, node: ast.expr) -> AbsVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) \
                    or isinstance(node.value, (int, float, complex)):
                return _LIT
            return _TOP
        if isinstance(node, ast.Name):
            return self._eval_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return self._eval(node.operand)
            self._eval(node.operand)
            return _LIT if isinstance(node.op, ast.Not) else _TOP
        if isinstance(node, ast.BoolOp):
            out = AbsVal(Dim.BOTTOM, True)
            for value_node in node.values:
                out = self._join_vals(out, self._eval(value_node))
            return out
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body, orelse = self._eval(node.body), self._eval(node.orelse)
            return self._join_vals(body, orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = AbsVal(Dim.BOTTOM, True)
            for elt in node.elts:
                out = self._join_vals(out, self._eval(elt))
            return out if node.elts else _LIT
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._bind(gen.target, self._eval(gen.iter), None)
                for cond in gen.ifs:
                    self._eval(cond)
            return self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self._bind(gen.target, self._eval(gen.iter), None)
            self._eval(node.key)
            self._eval(node.value)
            return _TOP
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind(node.target, value, node.value)
            return value
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        return _TOP

    @staticmethod
    def _join_vals(left: AbsVal, right: AbsVal) -> AbsVal:
        if left.literal != right.literal:
            # max(0.0, delay) merges the literal chameleon into the
            # dimensioned branch instead of widening to TOP.
            lit, other = (left, right) if left.literal else (right, left)
            if other.dim.special == "bottom":
                return lit
            return AbsVal(other.dim)
        return AbsVal(left.dim.join(right.dim),
                      left.literal and right.literal)

    def _eval_name(self, name: str) -> AbsVal:
        if name in self.env:
            return self.env[name]
        resolved = self.resolver.resolve_name(name)
        if resolved is not None and resolved in self.a.config.unit_constants:
            return AbsVal(self.a.config.unit_constants[resolved])
        if name in self._consts():
            return self._consts()[name]
        return _TOP

    def _consts(self) -> Dict[str, AbsVal]:
        return self.a._module_constants(self.module)

    def _eval_attribute(self, node: ast.Attribute) -> AbsVal:
        dotted = _dotted_name(node)
        if dotted is not None:
            resolved = self.resolver.resolve_name(dotted)
            if resolved is not None \
                    and resolved in self.a.config.unit_constants:
                return AbsVal(self.a.config.unit_constants[resolved])
        # self.field with a declared (Annotated) dataclass field dim.
        if isinstance(node.value, ast.Name) and node.value.id == "self" \
                and self.fn.class_qualname is not None:
            fields = self.a.field_dims.get(self.fn.class_qualname, {})
            if node.attr in fields:
                return AbsVal(fields[node.attr])
        manifest_dim = self.a.config.manifest.get(node.attr)
        if manifest_dim is not None:
            return AbsVal(manifest_dim)
        return _TOP

    def _eval_subscript(self, node: ast.Subscript) -> AbsVal:
        base = self._eval(node.value)
        if isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            manifest_dim = self.a.config.manifest.get(node.slice.value)
            if manifest_dim is not None:
                return AbsVal(manifest_dim)
            return _TOP
        if isinstance(node.slice, ast.Tuple):
            for elt in node.slice.elts:
                self._eval(elt)
        else:
            self._eval(node.slice)
        # Containers are elementwise: a vector of delays indexes (or
        # slices) to a delay.
        return AbsVal(base.dim, base.literal)

    def _eval_binop(self, node: ast.BinOp) -> AbsVal:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._add(left, right, node.lineno, "arithmetic")
        if isinstance(node.op, (ast.Mult, ast.MatMult)):
            return self._mul_like(left, right, divide=False,
                                  left_node=node.left,
                                  right_node=node.right,
                                  lineno=node.lineno)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return self._mul_like(left, right, divide=True,
                                  left_node=node.left,
                                  right_node=node.right,
                                  lineno=node.lineno)
        if isinstance(node.op, ast.Mod):
            return self._add(left, right, node.lineno, "modulo")
        if isinstance(node.op, ast.Pow):
            exponent = _literal_float(node.right)
            if exponent is not None:
                return AbsVal(left.dim.pow(Fraction(exponent)),
                              left.literal)
            if left.dim.is_dimensionless:
                return AbsVal(Dim.DIMENSIONLESS, left.literal)
            return _TOP
        return _TOP

    def _eval_compare(self, node: ast.Compare) -> AbsVal:
        operands = [self._eval(operand)
                    for operand in (node.left, *node.comparators)]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE,
                               ast.Gt, ast.GtE)):
                self._add(left, right, node.lineno, "comparison")
        return _LIT

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> AbsVal:
        pos_vals = [self._eval(arg) for arg in node.args
                    if not isinstance(arg, ast.Starred)]
        kw_vals = {kw.arg: self._eval(kw.value)
                   for kw in node.keywords if kw.arg is not None}
        site = self.resolver._classify(node.func)
        if site.target is not None:
            return self._in_program_call(node, site.target, pos_vals,
                                         kw_vals)
        if site.external is not None:
            return self._external_call(site.external, node, pos_vals)
        return _TOP

    def _in_program_call(self, node: ast.Call, target: str,
                         pos_vals: List[AbsVal],
                         kw_vals: Dict[str, AbsVal]) -> AbsVal:
        callee = self.a.program.functions[target]
        params = list(callee.params)
        offset = 1 if params[:1] in (["self"], ["cls"]) else 0
        pos_nodes = [arg for arg in node.args
                     if not isinstance(arg, ast.Starred)]
        for index, (arg_node, value) in enumerate(zip(pos_nodes, pos_vals)):
            slot = index + offset
            if slot < len(params):
                self._check_arg(node, arg_node, value, target,
                                params[slot])
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in params:
                self._check_arg(node, kw.value, kw_vals[kw.arg], target,
                                kw.arg)
        if callee.name == "__init__":
            return _TOP  # constructing an object, not a number
        return AbsVal(self.a.return_summary(target, final=self.report))

    def _manifest_source(self, node: ast.expr) -> Optional[str]:
        """Name of the declared manifest field ``node`` directly reads."""
        inner = node
        while isinstance(inner, ast.Call) and not isinstance(
                inner.func, ast.Attribute):
            # unwrap float(...) style casts
            if inner.args:
                inner = inner.args[0]
            else:
                break
        if isinstance(inner, ast.Attribute) \
                and inner.attr in self.a.config.manifest:
            return inner.attr
        if isinstance(inner, ast.Subscript) \
                and isinstance(inner.slice, ast.Constant) \
                and isinstance(inner.slice.value, str) \
                and inner.slice.value in self.a.config.manifest:
            return inner.slice.value
        return None

    def _check_arg(self, call: ast.Call, arg_node: ast.expr, value: AbsVal,
                   target: str, param: str) -> None:
        declared = self.a.param_dims[target].get(param, Dim.TOP)
        if not declared.is_concrete or not value.dim.is_concrete \
                or value.literal or value.dim == declared:
            return
        confusion = ""
        for dim_a, dim_b, label in _CONFUSION_PAIRS:
            if {value.dim, declared} == {dim_a, dim_b}:
                confusion = f" ({label})"
        source = self._manifest_source(arg_node)
        if source is not None:
            self._emit(
                "Q005", call.lineno,
                f"field '{source}' is declared "
                f"'{self.a.config.manifest[source].label()}' in the "
                f"DIMENSIONS manifest but {target} consumes it as "
                f"'{declared.label()}' (parameter '{param}')"
                f"{confusion}",
                hint="convert the field before the call or fix the "
                     "DIMENSIONS entry if the declaration is wrong")
        else:
            self._emit(
                "Q003", call.lineno,
                f"argument '{param}' of {target} expects "
                f"'{declared.label()}' but receives "
                f"'{value.dim.label()}'{confusion}",
                hint="invert/convert the value at the call site "
                     "(1/period is a frequency; energy*frequency is a "
                     "power) or fix the callee's annotation")

    def _external_call(self, external: str, node: ast.Call,
                       pos_vals: List[AbsVal]) -> AbsVal:
        if external in _PRESERVE_FIRST:
            return pos_vals[0] if pos_vals else _TOP
        if external in _JOIN_ARGS:
            out = AbsVal(Dim.BOTTOM, True)
            for value in pos_vals:
                out = self._join_vals(out, value)
            return out if pos_vals else _TOP
        if external in _SQRT:
            return AbsVal(pos_vals[0].dim.pow(Fraction(1, 2)),
                          pos_vals[0].literal) if pos_vals else _TOP
        if external == "numpy.square":
            return AbsVal(pos_vals[0].dim.pow(2),
                          pos_vals[0].literal) if pos_vals else _TOP
        if external in _MUL_ARGS and len(pos_vals) >= 2:
            return AbsVal(pos_vals[0].dim.mul(pos_vals[1].dim),
                          pos_vals[0].literal and pos_vals[1].literal)
        if external in _DIV_ARGS and len(pos_vals) >= 2:
            return AbsVal(pos_vals[0].dim.div(pos_vals[1].dim),
                          pos_vals[0].literal and pos_vals[1].literal)
        if external in _ADD_ARGS and len(pos_vals) >= 2:
            return self._add(pos_vals[0], pos_vals[1], node.lineno,
                             "elementwise arithmetic")
        if external == "numpy.where" and len(pos_vals) == 3:
            return self._join_vals(pos_vals[1], pos_vals[2])
        if external in _LITERAL_RESULTS:
            return _LIT
        return _TOP
