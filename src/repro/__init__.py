"""repro: Smart non-default routing for clock power reduction.

A from-scratch reproduction of the DAC 2013 paper by Kahng, Kang and
Lee: selective assignment of non-default routing rules (width/spacing
upgrades) to clock wires, so the clock network gets (nearly) the
robustness of uniformly NDR-routed clocks at (nearly) the power of
default routing.

The library contains the full physical-design substrate the flow needs:
technology modeling, clock tree synthesis, track routing, RC extraction,
Elmore/crosstalk/Monte-Carlo timing, EM checks, and a power model — see
``DESIGN.md`` for the inventory.

Quickstart (the supported surface is :mod:`repro.api`)::

    from repro.api import compare

    report = compare("ckt64")
    print(f"smart saves {report.smart_saving_pct:.1f}% vs all-ndr")
"""

from repro import api
from repro.api import CompareReport, SweepReport, compare, sweep, trace_report
from repro.designs import (DesignFamily, DesignSpec, benchmark_suite,
                           families, generate_design, resolve_selectors,
                           spec_by_name, spec_fingerprint)
from repro.core import (FlowResult, NdrClassifierGuide, OptimizeResult,
                        Policy, RobustnessTargets, SmartNdrOptimizer,
                        build_physical_design, run_flow)
from repro.core.evaluation import AnalysisBundle, analyze_all, targets_from_reference
from repro.netlist import Design
from repro.tech import (RoutingRule, RuleName, RULE_SET, Technology,
                        default_technology, rule_by_name)

__version__ = "1.0.0"

__all__ = [
    "api",
    "CompareReport",
    "SweepReport",
    "compare",
    "sweep",
    "trace_report",
    "DesignFamily",
    "DesignSpec",
    "benchmark_suite",
    "families",
    "generate_design",
    "resolve_selectors",
    "spec_by_name",
    "spec_fingerprint",
    "FlowResult",
    "NdrClassifierGuide",
    "OptimizeResult",
    "Policy",
    "RobustnessTargets",
    "SmartNdrOptimizer",
    "build_physical_design",
    "run_flow",
    "AnalysisBundle",
    "analyze_all",
    "targets_from_reference",
    "Design",
    "RoutingRule",
    "RuleName",
    "RULE_SET",
    "Technology",
    "default_technology",
    "rule_by_name",
    "__version__",
]
