"""Per-layer track occupancy with interval bookkeeping and neighbor queries."""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.geom.grid import RoutingGrid
from repro.route.wires import NeighborCoupling, RoutedWire
from repro.tech.layers import MetalLayer


@dataclass
class _Interval:
    lo: float
    hi: float
    wire_id: int


class TrackManager:
    """Occupancy of every routing track on every layer.

    The manager answers three questions:

    * is track *t* free over span [lo, hi]?  (used to place wires)
    * who occupies tracks near wire *w*, and with what overlap?
      (used by the extractor for coupling)
    * how full is each layer?  (congestion reporting)
    """

    def __init__(self, grid: RoutingGrid) -> None:
        self.grid = grid
        # (layer name, track index) -> intervals sorted by lo
        self._tracks: dict[tuple[str, int], list[_Interval]] = {}
        self._wires: dict[int, RoutedWire] = {}
        # (layer name, track index) -> hard keep-out spans (blockages)
        self._blocked: dict[tuple[str, int], list[tuple[float, float]]] = {}
        self.overflows = 0

    # -- placement ----------------------------------------------------------------

    def block(self, layer: MetalLayer, track: int, lo: float, hi: float) -> None:
        """Mark [lo, hi] on (layer, track) as a hard keep-out (macro)."""
        self._blocked.setdefault((layer.name, track), []).append((lo, hi))

    def is_free(self, layer: MetalLayer, track: int, lo: float, hi: float) -> bool:
        """True if no wire or keep-out on (layer, track) overlaps [lo, hi]."""
        for b_lo, b_hi in self._blocked.get((layer.name, track), []):
            if b_lo < hi and b_hi > lo:
                return False
        intervals = self._tracks.get((layer.name, track), [])
        idx = bisect.bisect_left([iv.lo for iv in intervals], hi)
        for iv in intervals[:idx]:
            if iv.hi > lo:
                return False
        return True

    def nearest_free_track(self, layer: MetalLayer, track: int,
                           lo: float, hi: float, window: int = 6) -> int:
        """Nearest track to ``track`` free over [lo, hi], searching +-window.

        Falls back to ``track`` itself (and counts an overflow) when no
        free track exists in the window — the synthetic benchmarks are
        sized so this is rare, and the overflow count surfaces it.
        """
        n = self.grid.num_tracks(layer)
        for delta in range(window + 1):
            for cand in ((track + delta, track - delta) if delta else (track,)):
                if 0 <= cand < n and self.is_free(layer, cand, lo, hi):
                    return cand
        self.overflows += 1
        return track

    def register(self, wire: RoutedWire) -> None:
        """Record ``wire`` as occupying its track over its span."""
        if wire.wire_id in self._wires:
            raise ValueError(f"wire id {wire.wire_id} already registered")
        self._wires[wire.wire_id] = wire
        key = (wire.layer.name, wire.track)
        intervals = self._tracks.setdefault(key, [])
        iv = _Interval(wire.segment.lo, wire.segment.hi, wire.wire_id)
        los = [existing.lo for existing in intervals]
        intervals.insert(bisect.bisect_left(los, iv.lo), iv)

    def wire(self, wire_id: int) -> RoutedWire:
        """The registered wire with this id."""
        return self._wires[wire_id]

    # -- verifier views ------------------------------------------------------------

    def occupancy(self) -> list[tuple[str, int, tuple[tuple[float, float, int], ...]]]:
        """Every occupied track as ``(layer, track, ((lo, hi, wire_id), ...))``.

        Intervals come back in lo-sorted registration order; the list is
        key-sorted so verification output is deterministic.
        """
        return [(lname, track,
                 tuple((iv.lo, iv.hi, iv.wire_id) for iv in intervals))
                for (lname, track), intervals in sorted(self._tracks.items())]

    def blocked_spans(self, layer_name: str,
                      track: int) -> tuple[tuple[float, float], ...]:
        """Hard keep-out spans registered on ``(layer_name, track)``."""
        return tuple(self._blocked.get((layer_name, track), ()))

    def iter_wires(self) -> list[RoutedWire]:
        """All registered wires, id-sorted (verifier/reporting view)."""
        return [self._wires[wid] for wid in sorted(self._wires)]

    # -- neighbor queries ------------------------------------------------------------

    def neighbors_of(self, wire: RoutedWire, max_tracks: int = 8) -> list[NeighborCoupling]:
        """Same-layer neighbors of ``wire`` within coupling reach.

        For each side (lower/upper track indices) only the *first*
        overlapping occupant per span portion shields the ones behind
        it; we approximate shielding by keeping, per side, the nearest
        track that has any overlap and ignoring farther tracks once the
        accumulated overlap covers the wire (standard first-neighbor
        approximation).
        """
        layer = wire.layer
        result: list[NeighborCoupling] = []
        guaranteed = wire.guaranteed_spacing()
        for direction in (-1, +1):
            covered = 0.0
            for step in range(1, max_tracks + 1):
                track = wire.track + direction * step
                if track < 0 or track >= self.grid.num_tracks(layer):
                    break
                distance = self.grid.track_distance(layer, wire.track, track)
                if distance - wire.width / 2.0 > layer.coupling_reach:
                    break
                intervals = self._tracks.get((layer.name, track), [])
                for iv in intervals:
                    overlap = min(iv.hi, wire.segment.hi) - max(iv.lo, wire.segment.lo)
                    if overlap <= 0.0:
                        continue
                    other = self._wires[iv.wire_id]
                    spacing = self.grid.edge_spacing(
                        layer, wire.track, wire.width, track, other.width)
                    # DRC floors: the layer minimum always holds, and
                    # either wire's rule guarantee pushes neighbors out.
                    spacing = max(spacing, layer.min_spacing,
                                  guaranteed, other.guaranteed_spacing())
                    result.append(NeighborCoupling(
                        neighbor_id=other.wire_id,
                        spacing=spacing,
                        overlap=overlap,
                        neighbor_kind=other.kind,
                        neighbor_activity=other.activity,
                        same_net=(other.net_name == wire.net_name),
                        neighbor_window=other.window,
                    ))
                    covered += overlap
                if covered >= wire.length:
                    break  # fully shielded on this side
        return result

    # -- congestion ---------------------------------------------------------------

    def layer_utilization(self, layer: MetalLayer) -> float:
        """Fraction of track-length occupied on ``layer`` (0..1)."""
        extent = (self.grid.die.width if layer.direction == "H"
                  else self.grid.die.height)
        total = self.grid.num_tracks(layer) * extent
        used = 0.0
        for (lname, _track), intervals in self._tracks.items():
            if lname != layer.name:
                continue
            for iv in intervals:
                used += iv.hi - iv.lo
        return min(1.0, used / total) if total > 0 else 0.0

    def track_length_used(self, kind=None) -> float:
        """Total wirelength registered, optionally filtered by net kind."""
        return sum(w.length for w in self._wires.values()
                   if kind is None or w.kind == kind)
