"""Routed wire records and neighbor-coupling descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geom.segment import Segment
from repro.netlist.net import NetKind
from repro.tech.layers import MetalLayer
from repro.tech.ndr import RoutingRule


@dataclass
class RoutedWire:
    """One axis-parallel wire piece assigned to a routing track.

    Attributes
    ----------
    wire_id:
        Dense id unique within a :class:`~repro.route.router.RoutingResult`.
    net_name:
        Owning net (clock tree edges all belong to the clock net).
    kind:
        Clock or signal.
    segment:
        The track-snapped geometry.
    layer:
        The metal layer.
    track:
        Track index on ``layer``.
    rule:
        The routing rule the wire is drawn with.  Mutable: the optimizer
        re-assigns clock wire rules after analysis.
    edge_child_id:
        For clock wires, the tree-node id of the child end of the tree
        edge this wire realises (one edge may span several wires).
    activity:
        Toggle probability per cycle of the owning net.
    extra_length:
        Snaking detour length (um) charged electrically to this wire
        (adds R and ground C) but assumed routed in quiet area, so it
        does not participate in coupling.
    shielded:
        True when grounded shield wires occupy both adjacent tracks:
        aggressor coupling is eliminated, replaced by (static) coupling
        to the shields at minimum spacing, and two extra tracks are
        consumed.  The classic alternative to a spacing NDR.
    """

    wire_id: int
    net_name: str
    kind: NetKind
    segment: Segment
    layer: MetalLayer
    track: int
    rule: RoutingRule
    edge_child_id: Optional[int] = None
    activity: float = 0.15
    extra_length: float = 0.0
    shielded: bool = False
    #: Switching window of the owning net (ps within the cycle), if known.
    window: Optional[tuple] = None

    @property
    def width(self) -> float:
        return self.rule.width_on(self.layer)

    @property
    def length(self) -> float:
        """Electrical length: geometric span plus snaking detour."""
        return self.segment.length + self.extra_length

    @property
    def is_clock(self) -> bool:
        return self.kind == NetKind.CLOCK

    def guaranteed_spacing(self) -> float:
        """Spacing the wire's rule guarantees to any same-layer neighbor."""
        return self.rule.spacing_on(self.layer)


@dataclass(frozen=True)
class NeighborCoupling:
    """A same-layer neighbor relationship seen from a victim wire.

    Attributes
    ----------
    neighbor_id:
        Wire id of the neighbor.
    spacing:
        Effective edge-to-edge spacing in um (already clamped to the
        victim rule's guarantee).
    overlap:
        Parallel-run length in um.
    neighbor_kind:
        Net kind of the neighbor.
    neighbor_activity:
        Toggle probability of the neighbor's net.
    same_net:
        True when the neighbor belongs to the same net (e.g. two clock
        branches running side by side).
    """

    neighbor_id: int
    spacing: float
    overlap: float
    neighbor_kind: NetKind
    neighbor_activity: float
    same_net: bool
    neighbor_window: Optional[tuple] = None
