"""The track router: realises clock tree edges and aggressor nets as wires.

Order of operations mirrors an industrial flow: the clock is routed
first (with priority over routing resources), then signal nets fill the
remaining tracks around it — which is exactly how aggressors end up
adjacent to clock wires at default spacing unless an NDR pushes them
away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cts.tree import ClockTree
from repro.geom.avoid import route_avoiding, segment_blocked
from repro.geom.grid import RoutingGrid
from repro.geom.segment import Segment, l_route
from repro.geom.steiner import build_steiner_tree
from repro.netlist.design import Design
from repro.netlist.net import Net, NetKind
from repro.route.tracks import TrackManager
from repro.route.wires import RoutedWire
from repro.tech.ndr import RoutingRule
from repro.tech.technology import Technology


@dataclass
class RoutingResult:
    """All routed wires for one design, with occupancy bookkeeping."""

    tracks: TrackManager
    wires: list[RoutedWire] = field(default_factory=list)
    #: clock-tree child node id -> wires realising the incoming edge
    edge_wires: dict[int, list[RoutedWire]] = field(default_factory=dict)

    @property
    def clock_wires(self) -> list[RoutedWire]:
        return [w for w in self.wires if w.is_clock]

    @property
    def signal_wires(self) -> list[RoutedWire]:
        return [w for w in self.wires if not w.is_clock]

    def clock_wirelength(self) -> float:
        """Total electrical length of all clock wires, um."""
        return sum(w.length for w in self.clock_wires)

    def assign_rule(self, wire_id: int, rule: RoutingRule) -> None:
        """Re-assign the routing rule of a clock wire (the optimizer's move)."""
        wire = self.tracks.wire(wire_id)
        if not wire.is_clock:
            raise ValueError(f"wire {wire_id} is a signal wire; rules apply to clock")
        wire.rule = rule

    def assign_shield(self, wire_id: int, shielded: bool = True) -> None:
        """Set/clear grounded shields on a clock wire's adjacent tracks."""
        wire = self.tracks.wire(wire_id)
        if not wire.is_clock:
            raise ValueError(f"wire {wire_id} is a signal wire; "
                             "shielding applies to clock")
        wire.shielded = shielded

    def rule_histogram(self) -> dict[str, int]:
        """Count of clock wires per rule name."""
        hist: dict[str, int] = {}
        for wire in self.clock_wires:
            hist[wire.rule.name.value] = hist.get(wire.rule.name.value, 0) + 1
        return hist

    def num_shielded(self) -> int:
        """Number of clock wires with grounded shields."""
        return sum(1 for w in self.clock_wires if w.shielded)

    def ndr_track_cost(self) -> float:
        """Extra track-length consumed by non-default rules and shields, um.

        Every unit of ``track_span`` beyond 1 blocks one neighbor track
        over the wire's span, and a shielded wire occupies both adjacent
        tracks with grounded metal; this is the routing-resource price
        of clock protection.
        """
        return sum((w.rule.track_span - 1 + (2 if w.shielded else 0))
                   * w.segment.length
                   for w in self.clock_wires)


class Router:
    """Routes one design's clock tree and signal nets onto tracks."""

    def __init__(self, design: Design, tech: Technology,
                 grid: Optional[RoutingGrid] = None) -> None:
        self.design = design
        self.tech = tech
        self.grid = grid if grid is not None else RoutingGrid(die=design.die)
        self._next_wire_id = 0

    def route(self, tree: ClockTree,
              clock_rule: Optional[RoutingRule] = None) -> RoutingResult:
        """Route the clock tree, then all signal nets.

        ``clock_rule`` is the rule clock wires start with (default: the
        technology's default rule; the optimizer upgrades from there).
        """
        result = self.route_clock_tree(tree, clock_rule=clock_rule)
        signals = self.route_signals(result.tracks)
        result.wires.extend(signals.wires)
        return result

    def route_clock_tree(self, tree: ClockTree,
                         clock_rule: Optional[RoutingRule] = None,
                         net_name: str = "clk",
                         shared: Optional[TrackManager] = None
                         ) -> RoutingResult:
        """Route one clock tree; the multi-domain building block.

        With ``shared`` (an existing :class:`TrackManager`), the tree
        routes into the same track space as previously routed domains —
        whose wires it then sees as neighbors (another clock is an
        activity-1.0 aggressor).  Each domain gets its own
        :class:`RoutingResult` (per-domain wire and edge maps) over the
        shared manager.
        """
        if clock_rule is None:
            clock_rule = self.tech.default_rule
        if shared is None:
            shared = TrackManager(self.grid)
            self._block_macros(shared)
        result = RoutingResult(tracks=shared)
        self._route_clock(tree, clock_rule, result, net_name)
        return result

    def route_signals(self, tracks: TrackManager) -> RoutingResult:
        """Route all signal nets into ``tracks``; returns their wires."""
        result = RoutingResult(tracks=tracks)
        for net in self.design.signal_nets:
            self._route_signal(net, result)
        return result

    def _block_macros(self, tracks: TrackManager) -> None:
        """Mark every routing track crossing a macro as a keep-out."""
        layers = {self.tech.layer_for(h, clock=c).name: self.tech.layer_for(h, clock=c)
                  for h in (True, False) for c in (True, False)}
        for blockage in self.design.blockages:
            for layer in layers.values():
                if layer.direction == "H":
                    lo_t = self.grid.track_index(layer, blockage.ylo)
                    hi_t = self.grid.track_index(layer, blockage.yhi)
                    span = (blockage.xlo, blockage.xhi)
                else:
                    lo_t = self.grid.track_index(layer, blockage.xlo)
                    hi_t = self.grid.track_index(layer, blockage.xhi)
                    span = (blockage.ylo, blockage.yhi)
                for track in range(lo_t, hi_t + 1):
                    tracks.block(layer, track, *span)

    # -- clock -------------------------------------------------------------------

    def _route_clock(self, tree: ClockTree, rule: RoutingRule,
                     result: RoutingResult, net_name: str = "clk") -> None:
        for parent, child in tree.edges():
            wires: list[RoutedWire] = []
            legs = self._legs(parent.location, child.location)
            for i, leg in enumerate(legs):
                is_last = i == len(legs) - 1
                extra = child.snake if is_last else 0.0
                wire = self._place(leg, NetKind.CLOCK, net_name, rule,
                                   activity=1.0, edge_child_id=child.node_id,
                                   extra_length=extra, result=result)
                wires.append(wire)
            if not legs and child.snake > 0.0:
                # Colocated nodes connected purely by snaking wire.
                stub = Segment(parent.location, parent.location)
                wire = self._place(stub, NetKind.CLOCK, net_name, rule,
                                   activity=1.0, edge_child_id=child.node_id,
                                   extra_length=child.snake, result=result)
                wires.append(wire)
            result.edge_wires[child.node_id] = wires

    # -- signals -----------------------------------------------------------------

    def _route_signal(self, net: Net, result: RoutingResult) -> None:
        if net.driver is None:
            raise ValueError(f"signal net {net.name} has no driver")
        sinks = [pin.location for pin in net.sinks]
        steiner = build_steiner_tree(net.driver.location, sinks)
        segments = steiner.segments
        if self.design.blockages and self._steiner_lands_on_macro(segments):
            # The shared-trunk topology put a bend or trunk on a macro;
            # fall back to star routing with per-sink detours (loses the
            # sharing for this net only).
            segments = []
            for pin in net.sinks:
                segments.extend(self._legs(net.driver.location, pin.location))
        for seg in segments:
            for piece in self._around_macros(seg):
                wire = self._place(piece, NetKind.SIGNAL, net.name,
                                   self.tech.default_rule,
                                   activity=net.activity, edge_child_id=None,
                                   extra_length=0.0, result=result)
                wire.window = net.window

    def _steiner_lands_on_macro(self, segments) -> bool:
        from repro.geom.avoid import CLEARANCE

        for seg in segments:
            for blockage in self.design.blockages:
                grown = blockage.expanded(CLEARANCE)
                if grown.contains(seg.a) or grown.contains(seg.b):
                    return True
        return False

    def _legs(self, src, dst) -> list[Segment]:
        """Point-to-point Manhattan legs, detouring around macros."""
        if not self.design.blockages:
            return l_route(src, dst)
        return route_avoiding(src, dst, self.design.blockages,
                              self.design.die)

    def _around_macros(self, seg: Segment) -> list[Segment]:
        """A routed segment, split around macros when it crosses one."""
        blockages = self.design.blockages
        if not blockages or not any(segment_blocked(seg, b)
                                    for b in blockages):
            return [seg]
        return route_avoiding(seg.a, seg.b, blockages, self.design.die)

    # -- shared ------------------------------------------------------------------

    def _place(self, seg: Segment, kind: NetKind, net_name: str,
               rule: RoutingRule, activity: float,
               edge_child_id: Optional[int], extra_length: float,
               result: RoutingResult) -> RoutedWire:
        layer = self.tech.layer_for(seg.horizontal, clock=(kind == NetKind.CLOCK))
        want_track = self.grid.track_index(layer, seg.track_coord)
        if seg.length > 0.0:
            track = result.tracks.nearest_free_track(
                layer, want_track, seg.lo, seg.hi)
        else:
            track = want_track
        coord = self.grid.track_coord(layer, track)
        snapped = self._snap_segment(seg, coord)
        wire = RoutedWire(
            wire_id=self._next_wire_id,
            net_name=net_name,
            kind=kind,
            segment=snapped,
            layer=layer,
            track=track,
            rule=rule,
            edge_child_id=edge_child_id,
            activity=activity,
            extra_length=extra_length,
        )
        self._next_wire_id += 1
        result.tracks.register(wire)
        result.wires.append(wire)
        return wire

    @staticmethod
    def _snap_segment(seg: Segment, coord: float) -> Segment:
        from repro.geom.point import Point

        if seg.horizontal:
            return Segment(Point(seg.a.x, coord), Point(seg.b.x, coord))
        return Segment(Point(coord, seg.a.y), Point(coord, seg.b.y))
