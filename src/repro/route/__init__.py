"""Track-based router for clock and aggressor (signal) wires.

Substrate S5 in DESIGN.md.  Wires are assigned to per-layer routing
tracks; the :class:`~repro.route.tracks.TrackManager` keeps interval
occupancy per track so the extractor can ask "who are this segment's
same-layer neighbors, at what spacing, for how long a parallel run?"

Routing-rule semantics: a clock segment carrying a spacing NDR owns the
adjacent track(s), which the real router enforces with DRC.  We emulate
that by (a) charging the rule's ``track_span`` against capacity, and
(b) clamping the *effective* spacing used in extraction to the rule's
guaranteed spacing.  This keeps rule re-assignment cheap (no physical
re-route needed) while charging its true congestion cost.
"""

from repro.route.wires import RoutedWire, NeighborCoupling
from repro.route.tracks import TrackManager
from repro.route.router import Router, RoutingResult

__all__ = [
    "RoutedWire",
    "NeighborCoupling",
    "TrackManager",
    "Router",
    "RoutingResult",
]
