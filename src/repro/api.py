"""The stable, typed entry points of the repro package.

Everything here is the *supported surface*: the CLI is a thin shell
over these functions, the examples import them, and their signatures
and result dataclasses change only with a deliberate version bump.
Internals (``repro.core``, ``repro.runner``, ...) remain importable but
may be reshaped between versions.

**Requests are the schema.**  Every entry point is described by a
typed, frozen request dataclass — :class:`FlowRequest`,
:class:`CompareRequest`, :class:`SweepRequest`, :class:`LintRequest` —
with exact JSON round-tripping (:meth:`to_dict` / :meth:`from_dict`,
schema-versioned, unknown fields rejected) and a stable
:meth:`content_key` for request-level deduplication.  The CLI and the
flow service (:mod:`repro.serve`) parse into the *same* objects, so
request defaults live in exactly one place: the dataclass fields.

* :func:`run_flow` — one policy flow on one design (re-exported from
  :mod:`repro.core`);
* :func:`run` — one matrix cell (:class:`FlowRequest`), returning a
  :class:`CellReport`;
* :func:`compare` — NO/ALL/SMART (and optionally ML) on one design,
  returning a :class:`CompareReport`;
* :func:`sweep` — budget-slack sweep of the smart policy, returning a
  :class:`SweepReport`;
* :func:`lint` — the DRC/ERC + engine-oracle verifier over a flow, or
  the whole-program static analyzer (``LintRequest(static=True)``);
* :func:`execute` — dispatch any request object to its entry point;
* :func:`trace_report` — render a ``--trace`` JSONL file the way the
  ``repro trace`` subcommand does;
* :func:`fit_guide` — the inline-trained ML guide the ``*_ml``
  policies use.

The pre-request call forms (``compare("ckt64", slack=0.1)``) keep
working as deprecation shims: they build the equivalent request object,
warn :class:`DeprecationWarning`, and produce bit-identical reports.

Each report dataclass is plain data (JSON-ready via
:func:`dataclasses.asdict` / :func:`report_to_dict`), so callers can
persist or post-process results without touching runner internals.
"""

from __future__ import annotations

import dataclasses
import warnings
from pathlib import Path
from typing import Any, ClassVar, Optional, Sequence, Union

from repro.core import NdrClassifierGuide, Policy, run_flow
from repro.runner import FlowRunner, JobResult, JobSpec, RunMatrix
from repro.tech import Technology, default_technology

__all__ = [
    "CellReport",
    "CompareReport",
    "CompareRequest",
    "FlowRequest",
    "LintRequest",
    "Policy",
    "REQUEST_KINDS",
    "REQUEST_SCHEMA",
    "SweepPoint",
    "SweepReport",
    "SweepRequest",
    "compare",
    "execute",
    "fit_guide",
    "lint",
    "report_to_dict",
    "request_field_default",
    "request_from_dict",
    "run",
    "run_flow",
    "sweep",
    "trace_report",
]

#: Bump when a request dataclass changes incompatibly (field renames,
#: semantic changes).  Folded into every request ``content_key``, so a
#: schema bump also invalidates coalescing/response caches.
REQUEST_SCHEMA = 1


# -- result dataclasses --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CellReport:
    """One executed matrix cell, flattened to plain data."""

    design: str
    policy: str
    slack: Optional[float]
    feasible: bool
    cached: bool
    runtime_s: float
    summary: dict[str, float]
    rule_histogram: dict[str, int]

    @property
    def power_uw(self) -> float:
        return self.summary["power_uw"]

    @property
    def upgraded_wires(self) -> int:
        """Wires assigned any non-default rule."""
        return (sum(self.rule_histogram.values())
                - self.rule_histogram.get("W1S1", 0))


@dataclasses.dataclass(frozen=True)
class CompareReport:
    """A policy comparison on one design at one slack."""

    design: str
    slack: float
    #: Smart-policy power saving vs the all-NDR reference, in percent.
    smart_saving_pct: float
    cells: tuple[CellReport, ...]

    def cell(self, policy: Union[Policy, str]) -> CellReport:
        """The row of one policy (KeyError when absent)."""
        name = policy.value if isinstance(policy, Policy) else str(policy)
        for row in self.cells:
            if row.policy == name:
                return row
        raise KeyError(f"no {name!r} cell in this comparison")


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One slack point of a budget sweep."""

    slack: float
    power_uw: float
    upgraded_pct: float
    feasible: bool


@dataclasses.dataclass(frozen=True)
class SweepReport:
    """A smart-policy budget-slack sweep on one design."""

    design: str
    points: tuple[SweepPoint, ...]


def _cell_report(result: JobResult) -> CellReport:
    return CellReport(design=result.job.design,
                      policy=result.job.policy.value,
                      slack=result.job.slack,
                      feasible=result.feasible,
                      cached=result.cached,
                      runtime_s=result.runtime,
                      summary=dict(result.summary),
                      rule_histogram=dict(result.rule_histogram))


# -- request dataclasses -------------------------------------------------------


def _policy_name(policy: Union[Policy, str]) -> str:
    name = policy.value if isinstance(policy, Policy) else str(policy)
    Policy(name)  # raises ValueError for unknown policies
    return name


class _RequestBase:
    """Shared JSON/round-trip machinery of the request dataclasses."""

    #: The wire tag of this request kind ("run", "compare", ...).
    KIND: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        """Exact JSON form: schema + kind tags plus every field."""
        out: dict[str, Any] = {"schema": REQUEST_SCHEMA, "kind": self.KIND}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Any:
        """Rebuild from :meth:`to_dict` output (strict: unknown fields,
        wrong schema and wrong kind all raise ``ValueError``)."""
        schema = data.get("schema", REQUEST_SCHEMA)
        if schema != REQUEST_SCHEMA:
            raise ValueError(f"unsupported request schema {schema!r} "
                             f"(expected {REQUEST_SCHEMA})")
        kind = data.get("kind", cls.KIND)
        if kind != cls.KIND:
            raise ValueError(f"request kind {kind!r} is not {cls.KIND!r}")
        fields = {f.name: f for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        unknown = set(data) - set(fields) - {"schema", "kind"}
        if unknown:
            raise ValueError(f"unknown {cls.KIND}-request fields "
                             f"{sorted(unknown)}")
        kwargs = {}
        for name, f in fields.items():
            if name not in data:
                continue
            value = data[name]
            if isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    def content_key(self) -> str:
        """Stable content hash for request-level dedup/coalescing.

        Design references resolve to *content* fingerprints (a corpus
        spec's knobs, a JSON file's bytes), so two textually different
        requests that compute the same thing share a key, and editing a
        design file changes it.
        """
        from repro.io.artifacts import fingerprint

        fields = {f.name: getattr(self, f.name)
                  for f in dataclasses.fields(self)}  # type: ignore[arg-type]
        parts: dict[str, Any] = {"schema": REQUEST_SCHEMA, "kind": self.KIND,
                                 "fields": fields}
        design = str(fields.get("design", "") or "")
        if design and self.cacheable:
            from repro.runner import design_ref_fingerprint

            parts["design_content"] = design_ref_fingerprint(design)
        return fingerprint(parts)

    @property
    def cacheable(self) -> bool:
        """False when a cached response could go stale (static lint)."""
        return True


@dataclasses.dataclass(frozen=True)
class FlowRequest(_RequestBase):
    """One matrix cell: one policy flow on one design."""

    KIND: ClassVar[str] = "run"

    design: str
    policy: str = Policy.SMART.value
    slack: Optional[float] = 0.15
    random_fraction: float = 0.3
    random_seed: int = 0
    lambda_track: float = 0.05

    def __post_init__(self) -> None:
        _policy_name(self.policy)
        if not self.design:
            raise ValueError("run request needs a design")

    def job_spec(self) -> JobSpec:
        """The runner cell this request describes."""
        return JobSpec(design=self.design, policy=Policy(self.policy),
                       slack=self.slack,
                       random_fraction=self.random_fraction,
                       random_seed=self.random_seed,
                       lambda_track=self.lambda_track)


@dataclasses.dataclass(frozen=True)
class CompareRequest(_RequestBase):
    """NO/ALL/SMART (and optionally ML) policies on one design."""

    KIND: ClassVar[str] = "compare"

    design: str
    slack: float = 0.15
    with_ml: bool = False

    def __post_init__(self) -> None:
        if not self.design:
            raise ValueError("compare request needs a design")


@dataclasses.dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """Budget-slack sweep of the smart policy on one design."""

    KIND: ClassVar[str] = "sweep"

    design: str
    slacks: tuple[float, ...] = (0.6, 0.3, 0.15)

    def __post_init__(self) -> None:
        if not self.design:
            raise ValueError("sweep request needs a design")
        if not self.slacks:
            raise ValueError("sweep request needs at least one slack")
        object.__setattr__(self, "slacks",
                           tuple(float(s) for s in self.slacks))


@dataclasses.dataclass(frozen=True)
class LintRequest(_RequestBase):
    """A flow's DRC/ERC + oracle checks, or the static analyzer."""

    KIND: ClassVar[str] = "lint"

    design: str = ""
    policy: str = Policy.SMART.value
    kinds: tuple[str, ...] = ()
    static: bool = False
    paths: tuple[str, ...] = ()
    codes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _policy_name(self.policy)
        if self.codes and not self.static:
            raise ValueError("codes= filtering is only for static=True")
        if not self.static and not self.design:
            raise ValueError("lint needs a design (or static=True)")

    @property
    def cacheable(self) -> bool:
        # A static-analysis response depends on source files no content
        # key sees; serving it from a response cache could go stale.
        return not self.static


#: Wire tag -> request class (the router's dispatch table).
REQUEST_KINDS: dict[str, type] = {
    FlowRequest.KIND: FlowRequest,
    CompareRequest.KIND: CompareRequest,
    SweepRequest.KIND: SweepRequest,
    LintRequest.KIND: LintRequest,
}


def request_from_dict(data: dict[str, Any],
                      kind: Optional[str] = None) -> Any:
    """Parse any request payload, dispatching on its ``kind`` tag.

    ``kind`` (e.g. from the service URL) fills in a missing tag and
    must agree with an explicit one.
    """
    tag = data.get("kind", kind)
    if tag is None:
        raise ValueError("request payload has no 'kind' "
                         f"(expected one of {sorted(REQUEST_KINDS)})")
    if kind is not None and tag != kind:
        raise ValueError(f"request kind {tag!r} does not match "
                         f"endpoint kind {kind!r}")
    cls = REQUEST_KINDS.get(str(tag))
    if cls is None:
        raise ValueError(f"unknown request kind {tag!r} "
                         f"(expected one of {sorted(REQUEST_KINDS)})")
    return cls.from_dict({**data, "kind": tag})


def request_field_default(cls: type, name: str) -> Any:
    """The schema default of one request field (the CLI's source of truth)."""
    for f in dataclasses.fields(cls):
        if f.name == name:
            if f.default is not dataclasses.MISSING:
                return f.default
            if f.default_factory is not dataclasses.MISSING:
                return f.default_factory()
            raise ValueError(f"{cls.__name__}.{name} has no default")
    raise KeyError(f"{cls.__name__} has no field {name!r}")


def report_to_dict(report: Any) -> dict[str, Any]:
    """JSON-ready form of any entry-point report (the service wire form)."""
    if isinstance(report, (CellReport, CompareReport, SweepReport)):
        kind = {CellReport: "run", CompareReport: "compare",
                SweepReport: "sweep"}[type(report)]
        return {"kind": kind, **dataclasses.asdict(report)}
    if hasattr(report, "to_json"):  # VerifyReport and kin
        import json

        return {"kind": "lint", "report": json.loads(report.to_json()),
                "has_errors": bool(report.has_errors)}
    raise TypeError(f"cannot serialise report {type(report).__name__}")


# -- entry points --------------------------------------------------------------


def fit_guide(seed: int = 0,
              designs: Sequence[str] = ("ckt64", "ckt128"),
              tech: Optional[Technology] = None) -> NdrClassifierGuide:
    """Train the NDR classifier guide on corpus designs.

    ``designs`` accepts anything the corpus resolves: exact names,
    globs (``"ckt*"``), families (``"family:hierarchical"``), or design
    JSON paths.
    """
    from repro.runner import expand_design_refs, resolve_design

    guide = NdrClassifierGuide(seed=seed)
    refs = expand_design_refs(tuple(designs))
    guide.fit_designs([resolve_design(ref) for ref in refs],
                      tech if tech is not None else default_technology())
    return guide


def _runner(tech: Optional[Technology], store: Any, jobs: int,
            guide: Optional[NdrClassifierGuide]) -> FlowRunner:
    return FlowRunner(tech=tech if tech is not None else default_technology(),
                      store=store, jobs=jobs, guide=guide)


def _warn_legacy(name: str, hint: str) -> None:
    warnings.warn(
        f"api.{name}(design, ...) kwargs calls are deprecated; pass a "
        f"{hint} instead (identical results, single source of defaults)",
        DeprecationWarning, stacklevel=3)


def run(request: FlowRequest, *, jobs: int = 1, store: Any = True,
        tech: Optional[Technology] = None,
        guide: Optional[NdrClassifierGuide] = None) -> CellReport:
    """Execute one matrix cell described by a :class:`FlowRequest`."""
    if not isinstance(request, FlowRequest):
        raise TypeError("run() takes a FlowRequest; for a raw design/"
                        "technology object use api.run_flow")
    if Policy(request.policy) == Policy.SMART_ML and guide is None:
        guide = fit_guide(tech=tech)
    runner = _runner(tech, store, jobs, guide)
    return _cell_report(runner.run_job(request.job_spec(),
                                       return_flow=False))


def _compare_impl(request: CompareRequest, jobs: int, store: Any,
                  tech: Optional[Technology],
                  guide: Optional[NdrClassifierGuide]) -> CompareReport:
    policies = [Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART]
    if request.with_ml:
        if guide is None:
            guide = fit_guide(tech=tech)
        policies.append(Policy.SMART_ML)
    runner = _runner(tech, store, jobs, guide)
    matrix = RunMatrix(designs=(request.design,), policies=tuple(policies),
                       slacks=(request.slack,))
    results = runner.run(matrix, jobs=jobs)
    by_policy = {r.job.policy: r for r in results}
    p_all = by_policy[Policy.ALL_NDR].summary["power_uw"]
    p_smart = by_policy[Policy.SMART].summary["power_uw"]
    saving = 100.0 * (p_all - p_smart) / p_all
    return CompareReport(design=request.design, slack=request.slack,
                         smart_saving_pct=saving,
                         cells=tuple(_cell_report(r) for r in results))


def compare(request: Union[CompareRequest, str], *, jobs: int = 1,
            store: Any = True, tech: Optional[Technology] = None,
            guide: Optional[NdrClassifierGuide] = None,
            **legacy: Any) -> CompareReport:
    """Compare NO/ALL/SMART (and optionally ML) policies on one design.

    Takes a :class:`CompareRequest` (the schema) plus execution-only
    options: ``jobs`` fans cells over worker processes; ``store``
    accepts anything :class:`~repro.runner.FlowRunner` does (``True``
    for the per-user artifact cache, ``False``/``None`` to disable, a
    path, or a live store); with ``with_ml`` a guide is trained inline
    unless one is passed.  The legacy ``compare(design, slack=...,
    with_ml=...)`` form still works and warns ``DeprecationWarning``.
    """
    if isinstance(request, CompareRequest):
        if legacy:
            raise TypeError(f"unexpected kwargs with a CompareRequest: "
                            f"{sorted(legacy)}")
    else:
        _warn_legacy("compare", "CompareRequest")
        request = CompareRequest(design=str(request), **legacy)
    return _compare_impl(request, jobs, store, tech, guide)


def _sweep_impl(request: SweepRequest, jobs: int, store: Any,
                tech: Optional[Technology]) -> SweepReport:
    ordered = sorted(request.slacks, reverse=True)
    runner = _runner(tech, store, jobs, None)
    matrix = RunMatrix(designs=(request.design,), policies=(Policy.SMART,),
                       slacks=tuple(ordered))
    results = runner.run(matrix, jobs=jobs)
    points = []
    for result in results:
        hist = result.rule_histogram
        total = sum(hist.values())
        points.append(SweepPoint(
            slack=float(result.job.slack or 0.0),
            power_uw=result.summary["power_uw"],
            upgraded_pct=100.0 * (total - hist.get("W1S1", 0)) / total,
            feasible=result.feasible))
    return SweepReport(design=request.design, points=tuple(points))


def sweep(request: Union[SweepRequest, str], *, jobs: int = 1,
          store: Any = True, tech: Optional[Technology] = None,
          **legacy: Any) -> SweepReport:
    """Sweep the budget slack for the smart policy on one design.

    The all-NDR reference is computed once and every slack's budgets
    derive from it — a sweep costs one reference plus one smart flow
    per point.  Takes a :class:`SweepRequest`; the legacy
    ``sweep(design, slacks=...)`` form still works and warns
    ``DeprecationWarning``.
    """
    if isinstance(request, SweepRequest):
        if legacy:
            raise TypeError(f"unexpected kwargs with a SweepRequest: "
                            f"{sorted(legacy)}")
    else:
        _warn_legacy("sweep", "SweepRequest")
        if "slacks" in legacy:
            legacy["slacks"] = tuple(float(s) for s in legacy["slacks"])
        request = SweepRequest(design=str(request), **legacy)
    return _sweep_impl(request, jobs, store, tech)


def _lint_impl(request: LintRequest,
               tech: Optional[Technology]) -> Any:
    import repro.analysis  # registers the static D/C checks

    if request.static:
        ctx = repro.analysis.build_static_context(
            list(request.paths) if request.paths else None)
        return repro.analysis.analyze_program(
            ctx, codes=list(request.codes) if request.codes else None)
    from repro.core.targets import RobustnessTargets
    from repro.runner import resolve_design
    from repro.verify import VerifyContext, run_checks

    resolved_tech = tech if tech is not None else default_technology()
    design_obj = resolve_design(request.design)
    targets = RobustnessTargets.for_period(design_obj.clock_period,
                                           resolved_tech.max_slew)
    flow = run_flow(design_obj, resolved_tech,
                    policy=Policy(request.policy), targets=targets)
    return run_checks(VerifyContext.from_flow(flow),
                      kinds=list(request.kinds) if request.kinds else None)


def lint(request: Union[LintRequest, str, None] = None, *,
         tech: Optional[Technology] = None, **legacy: Any) -> Any:
    """Run the verifier: a flow's DRC/ERC + oracle checks, or static.

    With ``LintRequest(static=True)`` the whole-program determinism /
    cache-soundness analyzer runs over ``paths`` (default: the
    installed package) and the flow fields are ignored; ``codes``
    restricts the run to rule families by ``fnmatch`` pattern
    (``codes=("Q*",)`` runs only the dimension checks).  Returns the
    report object (:class:`~repro.verify.VerifyReport` or the static
    analyzer's report) — both expose ``has_errors``, ``render()`` and
    ``to_json()``.  The legacy ``lint(design, policy=..., static=...)``
    form still works and warns ``DeprecationWarning``.
    """
    if isinstance(request, LintRequest):
        if legacy:
            raise TypeError(f"unexpected kwargs with a LintRequest: "
                            f"{sorted(legacy)}")
    else:
        if request is not None or legacy:
            _warn_legacy("lint", "LintRequest")
        for name in ("kinds", "paths", "codes"):
            if legacy.get(name) is not None and name in legacy:
                legacy[name] = tuple(legacy[name])
        cleaned = {k: v for k, v in legacy.items() if v is not None}
        if "policy" in cleaned:
            cleaned["policy"] = _policy_name(cleaned["policy"])
        request = LintRequest(design=str(request or ""), **cleaned)
    return _lint_impl(request, tech)


def execute(request: Any, *, jobs: int = 1, store: Any = True,
            tech: Optional[Technology] = None,
            guide: Optional[NdrClassifierGuide] = None) -> Any:
    """Dispatch any request object to its entry point.

    The one call the service worker needs: give it a parsed request
    (:func:`request_from_dict`) and it returns the matching report.
    """
    if isinstance(request, FlowRequest):
        return run(request, jobs=jobs, store=store, tech=tech, guide=guide)
    if isinstance(request, CompareRequest):
        return _compare_impl(request, jobs, store, tech, guide)
    if isinstance(request, SweepRequest):
        return _sweep_impl(request, jobs, store, tech)
    if isinstance(request, LintRequest):
        return _lint_impl(request, tech)
    raise TypeError(f"not a request object: {type(request).__name__}")


def trace_report(path: Union[str, Path], top: int = 10) -> str:
    """Render a trace JSONL file (the ``repro trace`` subcommand view)."""
    from repro.obs.export import load_trace
    from repro.obs.report import render_trace_report

    trace = load_trace(path)
    return render_trace_report(trace, top=top,
                               title=f"trace {trace.name} ({Path(path).name})")
