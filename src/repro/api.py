"""The stable, typed entry points of the repro package.

Everything here is the *supported surface*: the CLI is a thin shell
over these functions, the examples import them, and their signatures
and result dataclasses change only with a deliberate version bump.
Internals (``repro.core``, ``repro.runner``, ...) remain importable but
may be reshaped between versions.

* :func:`run_flow` — one policy flow on one design (re-exported from
  :mod:`repro.core`);
* :func:`compare` — NO/ALL/SMART (and optionally ML) on one design,
  returning a :class:`CompareReport`;
* :func:`sweep` — budget-slack sweep of the smart policy, returning a
  :class:`SweepReport`;
* :func:`lint` — the DRC/ERC + engine-oracle verifier over a flow, or
  the whole-program static analyzer (``static=True``);
* :func:`trace_report` — render a ``--trace`` JSONL file the way the
  ``repro trace`` subcommand does;
* :func:`fit_guide` — the inline-trained ML guide the ``*_ml``
  policies use.

Each report dataclass is plain data (JSON-ready via
:func:`dataclasses.asdict`), so callers can persist or post-process
results without touching runner internals.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.core import NdrClassifierGuide, Policy, run_flow
from repro.runner import FlowRunner, JobResult, JobSpec, RunMatrix
from repro.tech import Technology, default_technology

__all__ = [
    "CellReport",
    "CompareReport",
    "SweepPoint",
    "SweepReport",
    "Policy",
    "compare",
    "fit_guide",
    "lint",
    "run_flow",
    "sweep",
    "trace_report",
]


# -- result dataclasses --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CellReport:
    """One executed matrix cell, flattened to plain data."""

    design: str
    policy: str
    slack: Optional[float]
    feasible: bool
    cached: bool
    runtime_s: float
    summary: dict[str, float]
    rule_histogram: dict[str, int]

    @property
    def power_uw(self) -> float:
        return self.summary["power_uw"]

    @property
    def upgraded_wires(self) -> int:
        """Wires assigned any non-default rule."""
        return (sum(self.rule_histogram.values())
                - self.rule_histogram.get("W1S1", 0))


@dataclasses.dataclass(frozen=True)
class CompareReport:
    """A policy comparison on one design at one slack."""

    design: str
    slack: float
    #: Smart-policy power saving vs the all-NDR reference, in percent.
    smart_saving_pct: float
    cells: tuple[CellReport, ...]

    def cell(self, policy: Union[Policy, str]) -> CellReport:
        """The row of one policy (KeyError when absent)."""
        name = policy.value if isinstance(policy, Policy) else str(policy)
        for row in self.cells:
            if row.policy == name:
                return row
        raise KeyError(f"no {name!r} cell in this comparison")


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One slack point of a budget sweep."""

    slack: float
    power_uw: float
    upgraded_pct: float
    feasible: bool


@dataclasses.dataclass(frozen=True)
class SweepReport:
    """A smart-policy budget-slack sweep on one design."""

    design: str
    points: tuple[SweepPoint, ...]


def _cell_report(result: JobResult) -> CellReport:
    return CellReport(design=result.job.design,
                      policy=result.job.policy.value,
                      slack=result.job.slack,
                      feasible=result.feasible,
                      cached=result.cached,
                      runtime_s=result.runtime,
                      summary=dict(result.summary),
                      rule_histogram=dict(result.rule_histogram))


# -- entry points --------------------------------------------------------------


def fit_guide(seed: int = 0,
              designs: Sequence[str] = ("ckt64", "ckt128"),
              tech: Optional[Technology] = None) -> NdrClassifierGuide:
    """Train the NDR classifier guide on corpus designs.

    ``designs`` accepts anything the corpus resolves: exact names,
    globs (``"ckt*"``), families (``"family:hierarchical"``), or design
    JSON paths.
    """
    from repro.runner import expand_design_refs, resolve_design

    guide = NdrClassifierGuide(seed=seed)
    refs = expand_design_refs(tuple(designs))
    guide.fit_designs([resolve_design(ref) for ref in refs],
                      tech if tech is not None else default_technology())
    return guide


def _runner(tech: Optional[Technology], store: Any, jobs: int,
            guide: Optional[NdrClassifierGuide]) -> FlowRunner:
    return FlowRunner(tech=tech if tech is not None else default_technology(),
                      store=store, jobs=jobs, guide=guide)


def compare(design: str, slack: float = 0.15, with_ml: bool = False,
            jobs: int = 1, store: Any = True,
            tech: Optional[Technology] = None,
            guide: Optional[NdrClassifierGuide] = None) -> CompareReport:
    """Compare NO/ALL/SMART (and optionally ML) policies on one design.

    ``store`` accepts anything :class:`~repro.runner.FlowRunner` does:
    ``True`` for the per-user artifact cache, ``False``/``None`` to
    disable, a path, or a live store.  With ``with_ml`` a guide is
    trained inline unless one is passed.
    """
    policies = [Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART]
    if with_ml:
        if guide is None:
            guide = fit_guide(tech=tech)
        policies.append(Policy.SMART_ML)
    runner = _runner(tech, store, jobs, guide)
    matrix = RunMatrix(designs=(design,), policies=tuple(policies),
                       slacks=(slack,))
    results = runner.run(matrix, jobs=jobs)
    by_policy = {r.job.policy: r for r in results}
    p_all = by_policy[Policy.ALL_NDR].summary["power_uw"]
    p_smart = by_policy[Policy.SMART].summary["power_uw"]
    saving = 100.0 * (p_all - p_smart) / p_all
    return CompareReport(design=design, slack=slack, smart_saving_pct=saving,
                         cells=tuple(_cell_report(r) for r in results))


def sweep(design: str, slacks: Sequence[float] = (0.6, 0.3, 0.15),
          jobs: int = 1, store: Any = True,
          tech: Optional[Technology] = None) -> SweepReport:
    """Sweep the budget slack for the smart policy on one design.

    The all-NDR reference is computed once and every slack's budgets
    derive from it — a sweep costs one reference plus one smart flow
    per point.
    """
    ordered = sorted((float(s) for s in slacks), reverse=True)
    runner = _runner(tech, store, jobs, None)
    matrix = RunMatrix(designs=(design,), policies=(Policy.SMART,),
                       slacks=tuple(ordered))
    results = runner.run(matrix, jobs=jobs)
    points = []
    for result in results:
        hist = result.rule_histogram
        total = sum(hist.values())
        points.append(SweepPoint(
            slack=float(result.job.slack or 0.0),
            power_uw=result.summary["power_uw"],
            upgraded_pct=100.0 * (total - hist.get("W1S1", 0)) / total,
            feasible=result.feasible))
    return SweepReport(design=design, points=tuple(points))


def lint(design: Optional[str] = None,
         policy: Union[Policy, str] = Policy.SMART,
         kinds: Optional[Sequence[str]] = None,
         static: bool = False,
         paths: Optional[Sequence[str]] = None,
         codes: Optional[Sequence[str]] = None,
         tech: Optional[Technology] = None) -> Any:
    """Run the verifier: a flow's DRC/ERC + oracle checks, or ``--static``.

    With ``static=True`` the whole-program determinism /
    cache-soundness analyzer runs over ``paths`` (default: the
    installed package) and the flow arguments are ignored; ``codes``
    restricts the run to rule families by ``fnmatch`` pattern
    (``codes=["Q*"]`` runs only the dimension checks).  Returns
    the report object (:class:`~repro.verify.VerifyReport` or the
    static analyzer's report) — both expose ``has_errors``,
    ``render()`` and ``to_json()``.
    """
    import repro.analysis  # registers the static D/C checks

    if static:
        ctx = repro.analysis.build_static_context(list(paths) if paths
                                                  else None)
        return repro.analysis.analyze_program(ctx, codes=codes)
    if codes:
        raise ValueError("codes= filtering is only for static=True")
    if not design:
        raise ValueError("lint needs a design (or static=True)")
    from repro.core.targets import RobustnessTargets
    from repro.runner import resolve_design
    from repro.verify import VerifyContext, run_checks

    resolved_tech = tech if tech is not None else default_technology()
    design_obj = resolve_design(design)
    targets = RobustnessTargets.for_period(design_obj.clock_period,
                                           resolved_tech.max_slew)
    flow = run_flow(design_obj, resolved_tech,
                    policy=Policy(policy) if isinstance(policy, str)
                    else policy,
                    targets=targets)
    return run_checks(VerifyContext.from_flow(flow),
                      kinds=list(kinds) if kinds else None)


def trace_report(path: Union[str, Path], top: int = 10) -> str:
    """Render a trace JSONL file (the ``repro trace`` subcommand view)."""
    from repro.obs.export import load_trace
    from repro.obs.report import render_trace_report

    trace = load_trace(path)
    return render_trace_report(trace, top=top,
                               title=f"trace {trace.name} ({Path(path).name})")
