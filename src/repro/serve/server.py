"""The flow-service daemon: asyncio HTTP/JSON over :mod:`repro.api`.

:class:`ServeDaemon` accepts run/compare/sweep/lint requests (the
same typed request objects the CLI parses), answers identical repeats
from the response cache, coalesces identical *in-flight* work through
the :class:`~repro.serve.coalesce.Coalescer`, and schedules cold
requests onto a persistent :class:`~repro.serve.workers.WorkerPool`.
Worker span trees are adopted into the daemon's tracer, so one traced
daemon session reads as a single tree across every request and
process.  See ``docs/SERVICE.md`` for the endpoint reference.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Any, AsyncIterator, Optional

from repro import obs
from repro.api import REQUEST_KINDS, request_from_dict
from repro.engine.backends import default_backend_name
from repro.io.artifacts import (ArtifactStore, content_key,
                                default_cache_max_bytes)
from repro.serve.coalesce import Coalescer
from repro.serve.router import (MAX_BODY_BYTES, ApiError, HttpRequest,
                                HttpResponse, Router, parse_request_head)
from repro.serve.workers import WorkerPool

__all__ = ["ServeConfig", "ServeDaemon", "response_store_key"]


def response_store_key(request_key: str) -> str:
    """The ArtifactStore key caching one request's response dict."""
    return content_key("serve-response", request=request_key)


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Everything one daemon instance needs.

    ``port=0`` binds an ephemeral port (tests and the load generator
    read the real one back from :attr:`ServeDaemon.port`).
    ``max_store_bytes=None`` falls back to ``$REPRO_CACHE_MAX_BYTES``;
    ``store_root=None`` uses the per-user artifact cache, which the
    daemon then *shares* with its workers — one warm cache tier.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 2
    verify: bool = False
    store_root: Optional[str] = None
    max_store_bytes: Optional[int] = None
    #: Pre-spawn every worker (kernel imports) before accepting.
    warm: bool = True
    #: Install a daemon tracer so /v1/metrics and adopted worker spans
    #: are live without an external --trace session.
    trace: bool = True


class ServeDaemon:
    """One batching/dedup flow service instance."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        budget = (config.max_store_bytes
                  if config.max_store_bytes is not None
                  else default_cache_max_bytes())
        self.store = ArtifactStore(config.store_root,
                                   max_disk_bytes=budget)
        self.coalescer = Coalescer(
            on_first=lambda key: self.store.pin(response_store_key(key)),
            on_last=lambda key: self.store.unpin(response_store_key(key)))
        self.router = self._build_router()
        self.pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._started_at = 0.0
        self._owns_tracer = False
        self.counters: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        assert self._server is not None, "daemon not started"
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Open the pool and start accepting connections."""
        if self.config.trace and obs.active() is None:
            obs.enable("serve")
            self._owns_tracer = True
        self.pool = WorkerPool(
            workers=self.config.workers, verify=self.config.verify,
            engine_backend=default_backend_name(),
            store_root=str(self.store.root))
        if self.config.warm:
            await self.pool.warm()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host,
            port=self.config.port)
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Stop accepting, drain the pool, release the sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            self.pool.shutdown()
        if self._owns_tracer:
            obs.disable()
            self._owns_tracer = False
        self._shutdown.set()

    async def run_until_shutdown(self) -> None:
        """Serve until ``/v1/shutdown`` (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        if self._server is not None and self._server.is_serving():
            await self.stop()

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (SIGINT/SIGTERM handler)."""
        self._shutdown.set()

    # -- connection handling --------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
        except ApiError as exc:
            self._count("errors")
            response = HttpResponse(
                payload={"status": "error", "error": exc.message},
                status=exc.status)
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            self._count("errors")
            response = HttpResponse(
                payload={"status": "error",
                         "error": f"{type(exc).__name__}: {exc}"},
                status=500)
        try:
            if response.stream is not None:
                writer.write(HttpResponse.stream_head())
                await writer.drain()
                async for event in response.stream:
                    writer.write(HttpResponse.chunk(event))
                    await writer.drain()
                writer.write(HttpResponse.last_chunk())
            else:
                writer.write(response.encode())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self._count("dropped_connections")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> HttpResponse:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ApiError(400, "malformed or oversized request head")
        method, path, query, headers = parse_request_head(head[:-4])
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ApiError(400, "malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ApiError(400, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        request = HttpRequest(method=method, path=path, query=query,
                              headers=headers, body=body)
        handler = self.router.resolve(method, path)
        return await handler(request)

    # -- routes ---------------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/v1/health", self._handle_health)
        router.add("GET", "/v1/stats", self._handle_stats)
        router.add("GET", "/v1/metrics", self._handle_metrics)
        router.add("GET", "/v1/store/stats", self._handle_store_stats)
        router.add("POST", "/v1/store/gc", self._handle_store_gc)
        router.add("POST", "/v1/shutdown", self._handle_shutdown)
        for kind in REQUEST_KINDS:
            router.add("POST", f"/v1/{kind}", self._make_kind_handler(kind))
        return router

    async def _handle_health(self, _req: HttpRequest) -> HttpResponse:
        return HttpResponse(payload={
            "status": "ok",
            "endpoints": self.router.paths,
            "workers": self.config.workers,
        })

    async def _handle_stats(self, _req: HttpRequest) -> HttpResponse:
        return HttpResponse(payload={"status": "ok", **self.stats()})

    async def _handle_metrics(self, _req: HttpRequest) -> HttpResponse:
        tracer = obs.active()
        metrics = tracer.metrics.export() if tracer is not None else {}
        return HttpResponse(payload={"status": "ok", "metrics": metrics})

    async def _handle_store_stats(self, _req: HttpRequest) -> HttpResponse:
        return HttpResponse(payload={"status": "ok",
                                     "store": self.store.stats()})

    async def _handle_store_gc(self, req: HttpRequest) -> HttpResponse:
        data = req.json()
        max_bytes = data.get("max_bytes")
        if max_bytes is not None and not isinstance(max_bytes, int):
            raise ApiError(400, "max_bytes must be an integer")
        swept = self.store.gc(max_bytes=max_bytes)
        return HttpResponse(payload={"status": "ok", **swept})

    async def _handle_shutdown(self, _req: HttpRequest) -> HttpResponse:
        # Respond first, stop accepting after: set the event from a
        # callback so this connection's response still goes out.
        asyncio.get_running_loop().call_soon(self._shutdown.set)
        return HttpResponse(payload={"status": "ok", "stopping": True})

    def _make_kind_handler(self, kind: str) -> Any:
        async def handle(req: HttpRequest) -> HttpResponse:
            return await self._handle_flow_request(req, kind)
        return handle

    # -- the request path -----------------------------------------------------

    async def _handle_flow_request(self, req: HttpRequest,
                                   kind: str) -> HttpResponse:
        data = req.json()
        try:
            request = request_from_dict(data, kind=kind)
        except (TypeError, ValueError) as exc:
            raise ApiError(400, str(exc))
        self._count(f"requests.{kind}")
        obs.counter(f"serve.requests.{kind}").inc()
        if req.flag("stream"):
            return HttpResponse(
                stream=self._event_stream(request, req.flag("trace")))
        started = time.monotonic()
        envelope = await self._execute(request, req.flag("trace"))
        envelope["elapsed_s"] = round(time.monotonic() - started, 6)
        return HttpResponse(payload=envelope)

    async def _event_stream(self, request: Any,
                            want_trace: bool) -> AsyncIterator[dict]:
        """The ``?stream=1`` JSONL protocol: accepted → done/error."""
        key = request.content_key() if request.cacheable else None
        yield {"event": "accepted", "kind": request.KIND, "key": key}
        started = time.monotonic()
        try:
            envelope = await self._execute(request, want_trace)
        except Exception as exc:  # noqa: BLE001 - stream the failure
            yield {"event": "error", "kind": request.KIND,
                   "error": f"{type(exc).__name__}: {exc}"}
            return
        envelope["elapsed_s"] = round(time.monotonic() - started, 6)
        yield {"event": "done", **envelope}

    async def _execute(self, request: Any,
                       want_trace: bool) -> dict[str, Any]:
        """Cache → coalesce → compute, returning the response envelope."""
        assert self.pool is not None, "daemon not started"
        pool = self.pool
        envelope: dict[str, Any] = {"status": "ok", "kind": request.KIND,
                                    "cached": False, "coalesced": False}
        with obs.span("serve.handle", kind=request.KIND):
            if not request.cacheable:
                payload = await pool.execute(request.to_dict())
                self._finish(payload, want_trace, envelope)
                envelope["key"] = None
                return envelope
            key = request.content_key()
            envelope["key"] = key
            hit = self.store.load(response_store_key(key))
            if hit is not None:
                self._count("response_cache_hits")
                obs.counter("serve.cache_hits").inc()
                envelope.update(cached=True, result=hit)
                return envelope

            async def supply() -> dict[str, Any]:
                payload = await pool.execute(request.to_dict())
                self.store.save(response_store_key(key), payload["result"])
                return payload

            payload, coalesced = await self.coalescer.run(key, supply)
            if coalesced:
                self._count("coalesced_requests")
            self._finish(payload, want_trace, envelope)
            envelope["coalesced"] = coalesced
            return envelope

    def _finish(self, payload: dict[str, Any], want_trace: bool,
                envelope: dict[str, Any]) -> None:
        """Adopt the worker trace (once) and fill in the result."""
        envelope["result"] = payload["result"]
        trace = payload.pop("trace", None)
        if trace is not None:
            tracer = obs.active()
            if tracer is not None:
                tracer.adopt(trace, parent_id=obs.current_span_id())
            if want_trace:
                envelope["trace"] = trace

    # -- stats ----------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload: counters, coalescer, pool, store."""
        pool = self.pool
        return {
            "uptime_s": (round(time.monotonic() - self._started_at, 3)
                         if self._started_at else 0.0),
            "counters": dict(sorted(self.counters.items())),
            "coalescer": self.coalescer.stats(),
            "pool": {"workers": pool.workers if pool else 0,
                     "submitted": pool.submitted if pool else 0},
            "store": self.store.stats(),
        }
