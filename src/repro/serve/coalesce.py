"""Single-flight coalescing: one computation per in-flight content key.

The daemon keys every request by its content
(:meth:`repro.api._RequestBase.content_key`): while a computation for
a key is in flight, every further request for the same key *awaits
the same future* instead of scheduling new work.  This is the
batching/dedup heart of :mod:`repro.serve` — N identical concurrent
requests perform exactly one underlying flow.

The coalescer also brokers artifact *pinning*: the ``on_first`` hook
fires when a key gains its first interested client and ``on_last``
when the last one leaves, so the server can pin the response artifact
in the :class:`~repro.io.artifacts.ArtifactStore` for exactly the
window in which an eviction could strand a waiter.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Optional

from repro import obs

__all__ = ["Coalescer"]


class Coalescer:
    """An asyncio single-flight map from content key to result.

    :meth:`run` either starts ``supplier()`` (the *leader* path) or
    awaits the leader's future (the *coalesced* path).  Failures
    propagate to every waiter; the failed future is dropped from the
    in-flight map so the next request retries.  Counters:

    * ``computations`` — suppliers actually started;
    * ``coalesced`` — requests that piggybacked on an in-flight one.

    Both are mirrored into the obs metrics ``serve.computations`` and
    ``serve.coalesced`` when a tracer is installed.
    """

    def __init__(self,
                 on_first: Optional[Callable[[str], None]] = None,
                 on_last: Optional[Callable[[str], None]] = None) -> None:
        self._inflight: dict[str, asyncio.Future[Any]] = {}
        #: Clients currently interested in a key (leader + waiters).
        self._clients: dict[str, int] = {}
        self._on_first = on_first
        self._on_last = on_last
        self.computations = 0
        self.coalesced = 0

    # -- bookkeeping ----------------------------------------------------------

    def _enter(self, key: str) -> None:
        count = self._clients.get(key, 0)
        self._clients[key] = count + 1
        if count == 0 and self._on_first is not None:
            self._on_first(key)

    def _leave(self, key: str) -> None:
        count = self._clients.get(key, 1) - 1
        if count <= 0:
            self._clients.pop(key, None)
            if self._on_last is not None:
                self._on_last(key)
        else:
            self._clients[key] = count

    @property
    def inflight(self) -> int:
        """Keys with a computation currently running."""
        return len(self._inflight)

    def waiters(self, key: str) -> int:
        """Clients currently interested in ``key`` (0 when idle)."""
        return self._clients.get(key, 0)

    def stats(self) -> dict[str, int]:
        """The dedup counters (computations, coalesced, inflight)."""
        return {"computations": self.computations,
                "coalesced": self.coalesced,
                "inflight": len(self._inflight)}

    # -- the single-flight protocol -------------------------------------------

    async def run(self, key: str,
                  supplier: Callable[[], Awaitable[Any]]
                  ) -> tuple[Any, bool]:
        """Compute (or join) the value of ``key``.

        Returns ``(result, coalesced)`` where ``coalesced`` tells the
        caller whether it rode along on another request's computation.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            obs.counter("serve.coalesced").inc()
            self._enter(key)
            try:
                # shield: one waiter's cancellation must not cancel the
                # shared computation under everyone else.
                return await asyncio.shield(existing), True
            finally:
                self._leave(key)

        future: asyncio.Future[Any] = (
            asyncio.get_running_loop().create_future())
        self._inflight[key] = future
        self._enter(key)
        self.computations += 1
        obs.counter("serve.computations").inc()
        try:
            result = await supplier()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
                # The leader re-raises its own copy; mark the shared
                # future's exception as retrieved so an unwaited key
                # does not log "exception was never retrieved".
                future.exception()
            self._leave(key)
            raise
        else:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_result(result)
            self._leave(key)
            return result, False
