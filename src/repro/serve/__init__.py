"""The flow service: a batching/dedup daemon over :mod:`repro.api`.

The paper's policy exploration is expensive and highly cacheable —
the same design + technology + slack always produces the same answer
— so this package serves it from a long-running process instead of
re-running per invocation:

* :class:`ServeDaemon` / :class:`ServeConfig` — the asyncio HTTP/JSON
  server (``repro serve``) with typed request parsing, a response
  cache in the :class:`~repro.io.artifacts.ArtifactStore` tier, and
  streamed obs span trees (:mod:`repro.serve.server`);
* :class:`Coalescer` — single-flight dedup of identical in-flight
  requests (:mod:`repro.serve.coalesce`);
* :class:`WorkerPool` — the persistent worker-pool bridge that keeps
  kernels and stores warm across requests (:mod:`repro.serve.workers`).

See ``docs/SERVICE.md`` for the wire protocol.
"""

from repro.serve.coalesce import Coalescer
from repro.serve.router import ApiError, HttpRequest, HttpResponse, Router
from repro.serve.server import ServeConfig, ServeDaemon, response_store_key
from repro.serve.workers import WorkerPool

__all__ = [
    "ApiError",
    "Coalescer",
    "HttpRequest",
    "HttpResponse",
    "Router",
    "ServeConfig",
    "ServeDaemon",
    "WorkerPool",
    "response_store_key",
]
