"""Minimal HTTP/1.1 plumbing for the serve daemon.

Just enough protocol for a JSON request/response service on the
standard library: a parsed :class:`HttpRequest`, a renderable
:class:`HttpResponse` (fixed-length or chunked for event streams),
and an exact-path :class:`Router`.  No third-party framework — the
repository's no-new-dependencies rule applies to the service tier
too, and the daemon's API surface is small enough that a dispatch
table is clearer than one.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Awaitable, Callable, Optional
from urllib.parse import parse_qsl, urlsplit

__all__ = ["ApiError", "HttpRequest", "HttpResponse", "Router"]

#: Refuse request bodies beyond this (a request JSON is tiny).
MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}


class ApiError(Exception):
    """An error the daemon reports as a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclasses.dataclass
class HttpRequest:
    """One parsed request: method, split path/query, headers, body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict[str, Any]:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ApiError(400, "request body must be a JSON object")
        return data

    def flag(self, name: str) -> bool:
        """A boolean query parameter (``?stream=1``)."""
        return self.query.get(name, "").lower() in ("1", "true", "yes")


@dataclasses.dataclass
class HttpResponse:
    """A JSON response; ``stream`` switches to chunked event mode."""

    payload: Optional[dict[str, Any]] = None
    status: int = 200
    #: When set, the connection handler ignores ``payload`` and writes
    #: chunked JSONL events produced by this async iterator instead.
    stream: Optional[Any] = None

    def encode(self) -> bytes:
        """The full fixed-length HTTP response, head + JSON body."""
        body = json.dumps(self.payload or {}, sort_keys=True).encode()
        reason = _REASONS.get(self.status, "Unknown")
        head = (f"HTTP/1.1 {self.status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        return head.encode("ascii") + body

    @staticmethod
    def stream_head() -> bytes:
        """The response head opening a chunked JSONL event stream."""
        return (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/jsonl\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n")

    @staticmethod
    def chunk(event: dict[str, Any]) -> bytes:
        """One stream event as an HTTP chunk (JSON + newline)."""
        line = json.dumps(event, sort_keys=True).encode() + b"\n"
        return f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n"

    @staticmethod
    def last_chunk() -> bytes:
        """The zero-length chunk terminating a stream."""
        return b"0\r\n\r\n"


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


class Router:
    """Exact-path method dispatch with JSON 404/405 errors."""

    def __init__(self) -> None:
        self._routes: dict[str, dict[str, Handler]] = {}

    def add(self, method: str, path: str, handler: Handler) -> None:
        """Register ``handler`` for exactly (``method``, ``path``)."""
        self._routes.setdefault(path, {})[method.upper()] = handler

    def resolve(self, method: str, path: str) -> Handler:
        """The handler of (``method``, ``path``); 404/405 ApiError."""
        by_method = self._routes.get(path)
        if by_method is None:
            raise ApiError(404, f"no such endpoint: {path}")
        handler = by_method.get(method.upper())
        if handler is None:
            allowed = "/".join(sorted(by_method))
            raise ApiError(405, f"{path} accepts {allowed}, not {method}")
        return handler

    @property
    def paths(self) -> list[str]:
        """Every registered path, sorted (the health endpoint's list)."""
        return sorted(self._routes)


def parse_request_head(head: bytes) -> tuple[str, str, dict[str, str],
                                             dict[str, str]]:
    """Split a request head into (method, path, query, headers)."""
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise ApiError(400, "malformed request line")
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ApiError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), parts.path, query, headers
