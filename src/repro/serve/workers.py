"""The serve daemon's persistent worker pool.

Requests execute in long-lived worker processes so compiled kernels,
imported modules and the per-worker :class:`ArtifactStore` stay warm
across requests.  The seam mirrors the flow runner's pool plumbing
(:mod:`repro.runner.runner`) and is registered with the static
analyzer as a worker group (:data:`repro.analysis.report.DEFAULT_WORKER_GROUPS`):
the initializer resets the tracer slot and forwards exactly the
whitelisted environment (:data:`~repro.runner.runner.FORWARDED_ENV_WHITELIST`),
and the entry point ships results back as plain dicts — the request's
JSON form in, the report's JSON form (plus the worker's obs trace
payload) out.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional

from repro import obs
from repro.io.artifacts import ArtifactStore

__all__ = ["WorkerPool"]

#: Per-worker execution state, written once by the pool initializer.
_WORKER_STORE: Optional[ArtifactStore] = None
_WORKER_READY: bool = False


def _serve_pool_init(verify: bool, engine_backend: str,
                     store_root: Optional[str]) -> None:
    """Per-worker initializer: forward env, open the warm store.

    ``REPRO_VERIFY_FLOWS`` and ``REPRO_ENGINE_BACKEND`` are captured
    once in the daemon and replayed here, exactly like the flow
    runner's pool initializer, so flows behave identically in workers
    and in-process.
    """
    global _WORKER_STORE, _WORKER_READY
    # A forked worker inherits the daemon's installed tracer; drop it
    # so every request's trace streams back inside the result payload
    # (the daemon adopts it exactly once).
    obs.disable()
    if verify:
        os.environ["REPRO_VERIFY_FLOWS"] = "1"
    else:
        os.environ.pop("REPRO_VERIFY_FLOWS", None)
    os.environ["REPRO_ENGINE_BACKEND"] = engine_backend
    _WORKER_STORE = (ArtifactStore(store_root)  # static: ok[D004] per-worker store slot, written once by the pool initializer before any request runs
                     if store_root is not None else None)
    _WORKER_READY = True  # static: ok[D004] per-worker readiness flag, written once by the pool initializer


def _serve_pool_run(payload: dict[str, Any]) -> dict[str, Any]:
    """Pool entry point: execute one request's JSON form.

    The worker parses the payload with the same
    :func:`repro.api.request_from_dict` the daemon and CLI use,
    executes it serially (``jobs=1`` — the daemon parallelises across
    requests, not within them), and returns the report's wire form
    plus the worker's span tree / metric deltas.
    """
    assert _WORKER_READY, "serve pool used before initialization"
    from repro.api import execute, report_to_dict, request_from_dict

    request = request_from_dict(payload)
    with obs.capture("serve.worker") as tracer:
        with obs.span("serve.request", kind=request.KIND):
            report = execute(request, jobs=1, store=_WORKER_STORE)
    return {"result": report_to_dict(report),
            "trace": tracer.export_payload()}


def _serve_pool_ping() -> int:
    """Warm-up entry: force worker spawn + imports, return the pid."""
    assert _WORKER_READY, "serve pool used before initialization"
    import repro.engine  # noqa: F401  (pulls the compiled kernels in)

    return os.getpid()


class WorkerPool:
    """Asyncio bridge over a persistent :class:`ProcessPoolExecutor`.

    One pool outlives every request, so each worker pays imports,
    kernel warm-up and store opening once.  :meth:`execute` submits a
    request's JSON form and awaits the result without blocking the
    event loop.
    """

    def __init__(self, workers: int, verify: bool,
                 engine_backend: str,
                 store_root: Optional[str]) -> None:
        self.workers = max(1, int(workers))
        self.submitted = 0
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_serve_pool_init,
            initargs=(verify, engine_backend, store_root))

    async def warm(self) -> list[int]:
        """Spin every worker up front; returns the worker pids seen."""
        loop = asyncio.get_running_loop()
        pids = await asyncio.gather(*[
            loop.run_in_executor(self._pool, _serve_pool_ping)
            for _ in range(self.workers)])
        return sorted(set(pids))

    async def execute(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Run one request payload on the pool; returns the wire dict."""
        self.submitted += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, _serve_pool_run,
                                          payload)

    def shutdown(self) -> None:
        """Tear the pool down (waits; cancels queued submissions)."""
        self._pool.shutdown(wait=True, cancel_futures=True)
