"""Clock buffer library with a linear (switch-level) delay/slew model.

Each buffer is modeled the way cell characterization collapses to first
order:

* stage delay      ``d = d_intrinsic + r_drive * C_load``
* output slew      ``s = s_intrinsic + k_slew * r_drive * C_load``
* input capacitance, internal (short-circuit + parasitic) energy per
  switching event, and leakage power.

The default library is a geometric size sweep (X1..X16) with constant
``r_drive * c_in`` product, mirroring how real drive strengths scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BufferCell:
    """One clock buffer cell.

    Attributes
    ----------
    name:
        Cell name, e.g. ``"CLKBUF_X4"``.
    size:
        Relative drive strength (X-factor).
    r_drive:
        Effective output resistance, kOhm.
    c_in:
        Input pin capacitance, fF.
    d_intrinsic:
        Load-independent delay, ps.
    s_intrinsic:
        Load-independent output slew, ps.
    k_slew:
        Slew sensitivity to ``r_drive * C_load`` (dimensionless).
    e_internal:
        Internal energy per output transition pair, fJ.
    p_leak:
        Leakage power, uW.
    max_cap:
        Maximum load capacitance the cell may legally drive, fF.
    """

    name: str
    size: float
    r_drive: float
    c_in: float
    d_intrinsic: float
    s_intrinsic: float
    k_slew: float
    e_internal: float
    p_leak: float
    max_cap: float

    def delay(self, c_load: float) -> float:
        """Stage delay in ps driving ``c_load`` fF."""
        if c_load < 0.0:
            raise ValueError(f"load capacitance must be non-negative, got {c_load}")
        return self.d_intrinsic + self.r_drive * c_load

    def output_slew(self, c_load: float) -> float:
        """Output transition time in ps driving ``c_load`` fF."""
        if c_load < 0.0:
            raise ValueError(f"load capacitance must be non-negative, got {c_load}")
        return self.s_intrinsic + self.k_slew * self.r_drive * c_load

    def switching_energy(self, c_load: float, vdd: float) -> float:
        """Total energy per full clock cycle (rise+fall), fJ.

        The load term charges/discharges ``c_load`` once per cycle
        (``C V^2``); the internal term covers crowbar and self-loading.
        """
        return c_load * vdd * vdd + self.e_internal


@dataclass(frozen=True)
class BufferLibrary:
    """An ordered (smallest-to-largest) collection of buffer cells."""

    cells: tuple[BufferCell, ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("buffer library must contain at least one cell")
        sizes = [cell.size for cell in self.cells]
        if sizes != sorted(sizes):
            raise ValueError("buffer cells must be ordered by increasing size")

    def __iter__(self) -> Iterator[BufferCell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def by_name(self, name: str) -> BufferCell:
        """The cell named ``name`` (KeyError if absent)."""
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(f"no buffer named {name!r}")

    @property
    def smallest(self) -> BufferCell:
        return self.cells[0]

    @property
    def largest(self) -> BufferCell:
        return self.cells[-1]

    def smallest_driving(self, c_load: float, max_slew: float) -> BufferCell:
        """Cheapest cell that drives ``c_load`` within ``max_slew`` and max-cap.

        Returns the largest cell if none qualifies (callers detect the
        violation downstream); clock buffering then splits the load.
        """
        for cell in self.cells:
            if c_load <= cell.max_cap and cell.output_slew(c_load) <= max_slew:
                return cell
        return self.largest


def default_buffer_library() -> BufferLibrary:
    """A 45 nm-class clock buffer sweep, X1..X16.

    The X1 cell is calibrated near published 45 nm inverter-pair values
    (r ~ 2.2 kOhm, c_in ~ 1.3 fF, intrinsic ~ 18 ps); larger sizes scale
    resistance down and capacitance up linearly.
    """
    cells: list[BufferCell] = []
    for size in (1, 2, 4, 8, 16):
        cells.append(
            BufferCell(
                name=f"CLKBUF_X{size}",
                size=float(size),
                r_drive=2.2 / size,
                c_in=1.3 * size,
                d_intrinsic=18.0 + 1.0 * (size ** 0.5),
                s_intrinsic=12.0,
                k_slew=0.9,
                e_internal=0.55 * size,
                p_leak=0.012 * size,
                max_cap=45.0 * size,
            )
        )
    return BufferLibrary(cells=tuple(cells))
