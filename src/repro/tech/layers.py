"""Metal layer stack with geometry and RC coefficients.

The capacitance model follows the functional form foundry RC tech files
tabulate (and that analytical models like Sakurai-Tamaru fit):

* area (parallel-plate to the layers below/above):  ``c_area * width``
  per unit length,
* fringe (line edge to ground):                     ``c_fringe`` per edge
  per unit length,
* coupling (to a same-layer neighbor at spacing s): ``k_couple / s`` per
  unit length per side, saturating to a far-field fringe term
  ``c_fringe_far`` when no neighbor is within ``coupling_reach``.

All coefficients live in the library's coherent units (um, fF, kOhm; see
:mod:`repro.units`), so extraction is pure arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.units import ohm_per_um


@dataclass(frozen=True)
class MetalLayer:
    """One routable metal layer.

    Attributes
    ----------
    name:
        Layer name, e.g. ``"M3"``.
    index:
        1-based position in the stack (M1 is 1).
    direction:
        Preferred routing direction, ``"H"`` or ``"V"``.
    min_width:
        Minimum (default) drawn width in um.
    pitch:
        Track pitch in um at default width/spacing.
    min_spacing:
        Minimum (default) spacing in um.
    thickness:
        Metal thickness in um (for EM current density).
    sheet_res:
        Sheet resistance in ohm/square.
    c_area:
        Area capacitance coefficient in fF/um^2 (multiplied by width to
        get fF/um of length).
    c_fringe:
        Fringe capacitance per edge in fF/um of length.
    k_couple:
        Coupling coefficient: lateral capacitance per um of parallel
        run is ``k_couple / spacing**coupling_expo``.
    coupling_reach:
        Maximum same-layer distance (um) at which a neighbor still
        couples; beyond it the edge sees the far-field fringe term.
    c_fringe_far:
        Far-field (no-neighbor) edge capacitance in fF/um.
    em_jmax:
        Maximum allowed RMS current density, uA/um^2.
    coupling_expo:
        Spacing exponent of the lateral-capacitance model.  Parallel
        plates alone give 1.0, but the grounded layers above and below
        absorb field lines as spacing grows, so extracted coupling
        falls off super-linearly; 1.8 matches the 45 nm-class shape.
    """

    name: str
    index: int
    direction: str
    min_width: float
    pitch: float
    min_spacing: float
    thickness: float
    sheet_res: float
    c_area: float
    c_fringe: float
    k_couple: float
    coupling_reach: float
    c_fringe_far: float
    em_jmax: float
    coupling_expo: float = 1.8

    def __post_init__(self) -> None:
        if self.direction not in ("H", "V"):
            raise ValueError(f"layer direction must be 'H' or 'V', got {self.direction!r}")
        for field_name in ("min_width", "pitch", "min_spacing", "thickness", "sheet_res"):
            if getattr(self, field_name) <= 0.0:
                raise ValueError(f"{self.name}.{field_name} must be positive")

    def resistance_per_um(self, width: float) -> float:
        """Wire resistance per um of length at the given drawn width (kOhm/um)."""
        return ohm_per_um(self.sheet_res, width)

    def ground_cap_per_um(self, width: float) -> float:
        """Width-dependent capacitance to ground planes, fF/um (no coupling)."""
        if width <= 0.0:
            raise ValueError(f"wire width must be positive, got {width}")
        return self.c_area * width

    def coupling_cap_per_um(self, spacing: float) -> float:
        """Lateral capacitance to one same-layer neighbor at ``spacing``, fF/um.

        Returns the far-field fringe term when the neighbor is out of
        coupling reach (or ``spacing`` is ``inf``), so callers can use
        this uniformly for "neighbor" and "no neighbor" edges.
        """
        if spacing <= 0.0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        if spacing >= self.coupling_reach:
            return self.c_fringe_far
        # Super-linear falloff with spacing (ground planes absorb the
        # field), floored so it never drops below the far-field term
        # inside the reach window.
        return max(self.k_couple / spacing ** self.coupling_expo,
                   self.c_fringe_far)

    def isolated_cap_per_um(self, width: float) -> float:
        """Total cap/um of a wire with no neighbors on either side."""
        return self.ground_cap_per_um(width) + 2.0 * (self.c_fringe + self.c_fringe_far)


@dataclass(frozen=True)
class MetalStack:
    """An ordered collection of metal layers."""

    layers: tuple[MetalLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("metal stack must contain at least one layer")
        indices = [layer.index for layer in self.layers]
        if indices != sorted(indices) or len(set(indices)) != len(indices):
            raise ValueError("layer indices must be strictly increasing")

    def __iter__(self) -> Iterator[MetalLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def by_name(self, name: str) -> MetalLayer:
        """The layer named ``name`` (KeyError if absent)."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def by_index(self, index: int) -> MetalLayer:
        """The layer at 1-based stack position ``index``."""
        for layer in self.layers:
            if layer.index == index:
                return layer
        raise KeyError(f"no layer with index {index}")


def default_metal_stack() -> MetalStack:
    """A 45 nm-class 6-layer stack with published-magnitude coefficients.

    Coefficients are calibrated so an isolated minimum-width intermediate
    wire lands near 0.2 fF/um total capacitance and ~3 ohm/um resistance,
    which matches the per-um values reported for 45 nm copper interconnect.
    """
    # k_couple values are calibrated so lateral cap at *minimum* spacing
    # matches the linear model's published per-um magnitudes (0.17 fF/um
    # intermediate, 0.11 fF/um semi-global), with the 1.8-exponent
    # falloff taking over beyond it.
    def intermediate(name: str, index: int, direction: str,
                     min_width: float, pitch: float,
                     min_spacing: float) -> MetalLayer:
        return MetalLayer(name, index, direction, min_width, pitch,
                          min_spacing, thickness=0.14, sheet_res=0.25,
                          c_area=0.60, c_fringe=0.040, k_couple=0.00143,
                          coupling_reach=0.50, c_fringe_far=0.025,
                          em_jmax=8000.0)

    def semi_global(name: str, index: int, direction: str,
                    min_width: float, pitch: float,
                    min_spacing: float) -> MetalLayer:
        return MetalLayer(name, index, direction, min_width, pitch,
                          min_spacing, thickness=0.28, sheet_res=0.12,
                          c_area=0.55, c_fringe=0.045, k_couple=0.00331,
                          coupling_reach=0.80, c_fringe_far=0.028,
                          em_jmax=10000.0)

    return MetalStack(
        layers=(
            MetalLayer("M1", 1, "H", 0.065, 0.13, 0.065, 0.12, 0.38,
                       0.65, 0.038, 0.00112, 0.45, 0.024, 5000.0),
            intermediate("M2", 2, "V", 0.070, 0.14, 0.070),
            intermediate("M3", 3, "H", 0.070, 0.14, 0.070),
            semi_global("M4", 4, "V", 0.140, 0.28, 0.140),
            semi_global("M5", 5, "H", 0.140, 0.28, 0.140),
            MetalLayer("M6", 6, "V", 0.400, 0.80, 0.400, 0.80, 0.04,
                       0.50, 0.050, 0.00960, 2.00, 0.030, 20000.0),
        )
    )
