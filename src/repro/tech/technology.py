"""The technology bundle handed to the rest of the system."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.buffers import BufferLibrary, default_buffer_library
from repro.tech.layers import MetalLayer, MetalStack, default_metal_stack
from repro.tech.ndr import RoutingRule, RULE_SET
from repro.tech.variation import VariationModel, default_variation_model


@dataclass(frozen=True)
class Technology:
    """Everything process-dependent, in one immutable object.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"generic45"``.
    stack:
        The metal layer stack.
    buffers:
        The clock buffer library.
    variation:
        The process variation model.
    rules:
        Routing rules available to the optimizer (default first).
    vdd:
        Supply voltage, V.
    clock_layer_h / clock_layer_v:
        Names of the preferred horizontal/vertical clock routing layers.
    signal_layer_h / signal_layer_v:
        Names of the layers signal (aggressor) nets share with the clock.
    max_slew:
        Maximum allowed clock slew, ps.
    flop_cin:
        Clock-pin input capacitance of a sink flop, fF.
    """

    name: str
    stack: MetalStack
    buffers: BufferLibrary
    variation: VariationModel
    rules: tuple[RoutingRule, ...] = RULE_SET
    vdd: float = 1.0
    clock_layer_h: str = "M5"
    clock_layer_v: str = "M4"
    signal_layer_h: str = "M5"
    signal_layer_v: str = "M4"
    max_slew: float = 80.0
    flop_cin: float = 1.8

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError("vdd must be positive")
        if not self.rules or not self.rules[0].is_default:
            raise ValueError("rules must start with the default (1x/1x) rule")
        # Validate the named layers exist and run the advertised direction.
        for attr, want_dir in (("clock_layer_h", "H"), ("clock_layer_v", "V"),
                               ("signal_layer_h", "H"), ("signal_layer_v", "V")):
            layer = self.stack.by_name(getattr(self, attr))
            if layer.direction != want_dir:
                raise ValueError(
                    f"{attr}={layer.name} routes {layer.direction}, expected {want_dir}")

    @property
    def default_rule(self) -> RoutingRule:
        return self.rules[0]

    def layer_for(self, horizontal: bool, clock: bool = True) -> MetalLayer:
        """The routing layer for a wire of the given orientation/net class."""
        if clock:
            name = self.clock_layer_h if horizontal else self.clock_layer_v
        else:
            name = self.signal_layer_h if horizontal else self.signal_layer_v
        return self.stack.by_name(name)


def default_technology() -> Technology:
    """The calibrated generic 45 nm-class technology used by all experiments."""
    return Technology(
        name="generic45",
        stack=default_metal_stack(),
        buffers=default_buffer_library(),
        variation=default_variation_model(),
    )
