"""Technology modeling: metal stack, routing rules (NDRs), buffers, variation.

This package is substrate S1 in DESIGN.md.  It provides everything a
router/extractor/timer needs to know about the process:

* :class:`~repro.tech.layers.MetalLayer` — per-layer geometry and RC
  coefficients (sheet resistance, area/fringe/coupling capacitance).
* :class:`~repro.tech.ndr.RoutingRule` / :data:`~repro.tech.ndr.RULE_SET`
  — default and non-default routing rules (width/spacing multipliers).
* :class:`~repro.tech.buffers.BufferCell` /
  :class:`~repro.tech.buffers.BufferLibrary` — clock buffer cells with a
  linear delay/slew model and power data.
* :class:`~repro.tech.variation.VariationModel` — process-variation
  magnitudes for Monte-Carlo analysis.
* :class:`~repro.tech.technology.Technology` — the bundle handed to the
  rest of the system, with a calibrated 45 nm-class default
  (:func:`~repro.tech.technology.default_technology`).
"""

from repro.tech.layers import MetalLayer, MetalStack
from repro.tech.ndr import RoutingRule, RuleName, RULE_SET, rule_by_name
from repro.tech.buffers import BufferCell, BufferLibrary, default_buffer_library
from repro.tech.variation import VariationModel, default_variation_model
from repro.tech.technology import Technology, default_technology

__all__ = [
    "MetalLayer",
    "MetalStack",
    "RoutingRule",
    "RuleName",
    "RULE_SET",
    "rule_by_name",
    "BufferCell",
    "BufferLibrary",
    "default_buffer_library",
    "VariationModel",
    "default_variation_model",
    "Technology",
    "default_technology",
]
