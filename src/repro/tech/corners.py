"""Process corners for multi-corner timing.

A corner is a global multiplicative shift of the RC and gate-delay
baselines — the signoff abstraction sitting above the statistical
(Monte-Carlo) model: slow silicon has more resistive wires, denser
dielectric and slower transistors; fast silicon the opposite.
Magnitudes follow published slow/fast spreads for 45 nm-class
processes (10-25%).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessCorner:
    """One corner's multiplicative scales over the typical baseline.

    Attributes
    ----------
    name:
        Corner name, e.g. ``"SS"``.
    wire_r:
        Wire resistance multiplier.
    wire_c:
        Wire capacitance multiplier (dielectric + geometry shift).
    buffer_delay:
        Buffer stage-delay multiplier (intrinsic and drive together).
    buffer_slew:
        Buffer output-slew multiplier.
    """

    name: str
    wire_r: float = 1.0
    wire_c: float = 1.0
    buffer_delay: float = 1.0
    buffer_slew: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("wire_r", "wire_c", "buffer_delay", "buffer_slew"):
            value = getattr(self, field_name)
            if not 0.3 <= value <= 3.0:
                raise ValueError(
                    f"{field_name}={value} outside the sane corner range")


TT = ProcessCorner("TT")
SS = ProcessCorner("SS", wire_r=1.15, wire_c=1.08,
                   buffer_delay=1.25, buffer_slew=1.20)
FF = ProcessCorner("FF", wire_r=0.88, wire_c=0.94,
                   buffer_delay=0.82, buffer_slew=0.85)

#: The standard signoff corner set.
DEFAULT_CORNERS: tuple[ProcessCorner, ...] = (SS, TT, FF)


def corner_by_name(name: str) -> ProcessCorner:
    """Look up a standard corner by name."""
    for corner in DEFAULT_CORNERS:
        if corner.name == name:
            return corner
    raise KeyError(f"unknown corner {name!r}; "
                   f"valid: {[c.name for c in DEFAULT_CORNERS]}")
