"""Process-variation magnitudes for Monte-Carlo timing analysis.

The model captures the variation sources that matter for clock skew and
for the NDR decision:

* **Wire width variation** (lithography/CMP): Gaussian, split into a
  spatially-correlated systematic part (one draw per correlation-grid
  cell) and a *random per-wire* part (line-edge roughness, local CMP) —
  the random part is what actually differs between clock branches and
  therefore drives skew.  Width variation moves both R (inversely) and
  C (proportionally); crucially its *relative* impact shrinks on 2x-width
  NDR wires — one of the reasons NDRs protect timing.
* **Wire thickness variation** (CMP dishing): moves R inversely.
* **Buffer channel-length variation**: moves buffer delay; split into a
  die-to-die (fully correlated) and a random per-instance component.

Magnitudes are 1-sigma *fractions* of nominal, in line with published
45 nm numbers (several percent each).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VariationModel:
    """1-sigma variation fractions and spatial-correlation settings.

    Attributes
    ----------
    width_sigma:
        1-sigma *systematic* wire width variation as a fraction of the
        default (1x) width, shared by all wires in a correlation cell.
        Absolute, not relative: a 2x-wide wire sees the same absolute
        width noise, hence half the relative noise.
    width_rand_sigma:
        1-sigma *random per-wire* width variation (same normalisation),
        independent between wires — the component that differs between
        clock branches and drives skew.
    thickness_sigma:
        1-sigma wire thickness variation, fraction of nominal.
    buffer_d2d_sigma:
        1-sigma die-to-die buffer delay variation, fraction of nominal
        stage delay (fully correlated across the die).
    buffer_rand_sigma:
        1-sigma random per-buffer delay variation, fraction of nominal.
    corr_grid:
        Edge length (um) of the spatial-correlation grid cells for wire
        variation: segments in the same cell share one width/thickness
        draw, modeling across-die systematic variation.
    """

    width_sigma: float = 0.08
    width_rand_sigma: float = 0.06
    thickness_sigma: float = 0.05
    buffer_d2d_sigma: float = 0.03
    buffer_rand_sigma: float = 0.008
    corr_grid: float = 200.0

    def __post_init__(self) -> None:
        for name in ("width_sigma", "width_rand_sigma", "thickness_sigma",
                     "buffer_d2d_sigma", "buffer_rand_sigma"):
            value = getattr(self, name)
            if not 0.0 <= value < 0.5:
                raise ValueError(f"{name} must be in [0, 0.5), got {value}")
        if self.corr_grid <= 0.0:
            raise ValueError("corr_grid must be positive")


def default_variation_model() -> VariationModel:
    """The calibrated 45 nm-class variation model."""
    return VariationModel()
