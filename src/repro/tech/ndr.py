"""Non-default routing rules (NDRs).

A routing rule scales the default width and spacing of the layer a wire
is routed on.  The canonical clock-routing rule set — and the decision
space of the paper's optimizer — is:

=======  ======  ========  ==========================================
Name     Width   Spacing   Intuition
=======  ======  ========  ==========================================
W1S1     1x      1x        default signal rule; cheapest, least robust
W2S1     2x      1x        width-only: lower R (slew/EM), more area cap
W1S2     1x      2x        space-only: lower coupling cap, extra track
W2S2     2x      2x        full NDR; the industry default for clocks
W4S2     4x      2x        trunk rule: for top-level wires whose EM
                           current even 2x width cannot absorb
=======  ======  ========  ==========================================

Rules are ordered by a partial "robustness" relation: W4S2 dominates all,
W1S1 is dominated by all.  The optimizer upgrades along this lattice.
The uniform ALL-NDR baseline uses W2S2 (industry practice); W4S2 exists
because per-wire assignment can reach for it exactly where needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # imported for annotations only; no runtime dependency
    from repro.tech.layers import MetalLayer


class RuleName(str, enum.Enum):
    """Canonical names of the four routing rules."""

    W1S1 = "W1S1"
    W2S1 = "W2S1"
    W1S2 = "W1S2"
    W2S2 = "W2S2"
    W4S2 = "W4S2"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=False)
class RoutingRule:
    """A (width multiplier, spacing multiplier) pair over the layer default."""

    name: RuleName
    width_mult: float
    space_mult: float

    def __post_init__(self) -> None:
        if self.width_mult < 1.0 or self.space_mult < 1.0:
            raise ValueError("rule multipliers must be >= 1 (rules only upgrade)")

    @property
    def is_default(self) -> bool:
        # Exact multiplier identity is deliberate: rules are constructed
        # from the literal lattice values, never from arithmetic.
        return self.width_mult == 1.0 and self.space_mult == 1.0  # static: ok[U001] exact identity multipliers

    @property
    def track_span(self) -> int:
        """How many default routing tracks this rule occupies.

        A default wire occupies 1 track.  Doubling the width consumes
        roughly one extra track; doubling the spacing keeps one extra
        track clear on each side.  This integer is what the track router
        charges against capacity.
        """
        extra_width = int(round(self.width_mult - 1.0))
        extra_space = int(round(self.space_mult - 1.0))
        return 1 + extra_width + extra_space

    def width_on(self, layer: "MetalLayer") -> float:
        """Drawn width (um) on ``layer`` under this rule."""
        return layer.min_width * self.width_mult

    def spacing_on(self, layer: "MetalLayer") -> float:
        """Guaranteed same-layer spacing (um) on ``layer`` under this rule."""
        return layer.min_spacing * self.space_mult

    def dominates(self, other: "RoutingRule") -> bool:
        """True if this rule is at least as robust as ``other`` in both axes."""
        return self.width_mult >= other.width_mult and self.space_mult >= other.space_mult


W1S1 = RoutingRule(RuleName.W1S1, 1.0, 1.0)
W2S1 = RoutingRule(RuleName.W2S1, 2.0, 1.0)
W1S2 = RoutingRule(RuleName.W1S2, 1.0, 2.0)
W2S2 = RoutingRule(RuleName.W2S2, 2.0, 2.0)
W4S2 = RoutingRule(RuleName.W4S2, 4.0, 2.0)

#: The full decision space, ordered from cheapest to most robust.
RULE_SET: tuple[RoutingRule, ...] = (W1S1, W2S1, W1S2, W2S2, W4S2)

_BY_NAME: dict[RuleName, RoutingRule] = {rule.name: rule
                                         for rule in RULE_SET}
_BY_STR: dict[str, RoutingRule] = {rule.name.value: rule
                                   for rule in RULE_SET}


def rule_by_name(name: Union[RuleName, str]) -> RoutingRule:
    """Look up a rule by :class:`RuleName` or its string value."""
    if isinstance(name, RuleName):
        return _BY_NAME[name]
    try:
        return _BY_STR[str(name)]
    except KeyError:
        raise KeyError(f"unknown routing rule {name!r}; valid: {sorted(_BY_STR)}") from None


def upgrades_of(rule: RoutingRule) -> tuple[RoutingRule, ...]:
    """All strictly more robust rules than ``rule``, cheapest first."""
    return tuple(r for r in RULE_SET if r.dominates(rule) and r != rule)
