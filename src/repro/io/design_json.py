"""Design <-> JSON.

The schema captures exactly what the flow consumes: die, clock period,
clock source, sink flops, and signal (aggressor) nets with activities.
Geometry is stored as plain [x, y] pairs in um.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.cell import CellKind, PinDirection
from repro.netlist.design import Design
from repro.netlist.net import NetKind

SCHEMA_VERSION = 1


def design_to_dict(design: Design) -> dict[str, Any]:
    """Serialise a design to a JSON-ready dict."""
    design.validate()
    flops = [
        {"name": pin.instance.name,
         "xy": [pin.location.x, pin.location.y],
         "cin": pin.cap}
        for pin in design.clock_sinks
    ]
    nets = []
    for net in design.signal_nets:
        nets.append({
            "name": net.name,
            "activity": net.activity,
            "driver": {"name": net.driver.instance.name,
                       "xy": [net.driver.location.x, net.driver.location.y]},
            "sinks": [{"name": pin.instance.name,
                       "xy": [pin.location.x, pin.location.y],
                       "cin": pin.cap}
                      for pin in net.sinks],
        })
    return {
        "schema": SCHEMA_VERSION,
        "name": design.name,
        "die": [design.die.xlo, design.die.ylo, design.die.xhi, design.die.yhi],
        "clock_period": design.clock_period,
        "clock_source": [design.clock_root.location.x,
                         design.clock_root.location.y],
        "blockages": [[b.xlo, b.ylo, b.xhi, b.yhi]
                      for b in design.blockages],
        "flops": flops,
        "signal_nets": nets,
    }


def design_from_dict(data: dict[str, Any]) -> Design:
    """Rebuild a design from :func:`design_to_dict` output."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported design schema {schema!r} "
                         f"(expected {SCHEMA_VERSION})")
    die = Rect(*data["die"])
    design = Design(name=data["name"], die=die,
                    clock_period=data["clock_period"])
    design.add_clock_source(Point(*data["clock_source"]))
    for coords in data.get("blockages", []):
        design.add_blockage(Rect(*coords))
    for flop in data["flops"]:
        design.add_flop(flop["name"], Point(*flop["xy"]),
                        clock_pin_cap=flop["cin"])
    for net_data in data["signal_nets"]:
        driver_data = net_data["driver"]
        driver_inst = design.add_instance(
            driver_data["name"], CellKind.GATE, Point(*driver_data["xy"]))
        net = design.add_net(net_data["name"], NetKind.SIGNAL,
                             activity=net_data["activity"])
        net.connect_driver(driver_inst.add_pin("Z", PinDirection.OUTPUT))
        for sink_data in net_data["sinks"]:
            sink_inst = design.add_instance(
                sink_data["name"], CellKind.GATE, Point(*sink_data["xy"]))
            net.connect_sink(sink_inst.add_pin(
                "A", PinDirection.INPUT, cap=sink_data["cin"]))
    design.validate()
    return design


def save_design(design: Design, path: Union[str, Path]) -> None:
    """Write a design to a JSON file."""
    Path(path).write_text(json.dumps(design_to_dict(design), indent=1))


def load_design(path: Union[str, Path]) -> Design:
    """Read a design from a JSON file."""
    return design_from_dict(json.loads(Path(path).read_text()))
