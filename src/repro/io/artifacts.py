"""Content-addressed artifact store for flow-stage products.

Every stage of the flow pipeline (:mod:`repro.core.stages`) consumes
and produces serializable artifacts.  An artifact's identity is the
content hash of everything that determines it — the design, the
technology, and the stage parameters — so identical inputs always map
to the same key, across processes and across interpreter runs.

Two layers back the store:

* an in-memory map of *pickled bytes* (not live objects), so a cache
  hit always deserialises a fresh object graph — callers can mutate
  the returned artifact freely without poisoning the cache (the
  snapshot semantics ``run_flow`` relies on);
* an on-disk tree of pickle files under ``root/<kk>/<key>.pkl``,
  shared by worker processes and by repeat invocations.

Corruption of a stored artifact (truncated write, stale schema,
unpicklable payload) is never fatal: ``load`` returns ``None``, the
bad file is removed, and the caller rebuilds from scratch.

The store doubles as the shared cache tier of the flow service
(:mod:`repro.serve`): both layers evict least-recently-used entries
(memory by entry count, disk by byte budget via :meth:`ArtifactStore.gc`),
every load/save feeds hit/miss/byte counters into :mod:`repro.obs`,
and keys a live request is still waiting on can be *pinned*
(:meth:`ArtifactStore.pin`) so eviction never removes an artifact with
an in-flight waiter.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro import obs

#: Bump to invalidate every previously stored artifact (schema change).
#: 2: design identity moved to spec-content hashes (repro.designs) —
#: keys derived under the old name-salted hashing must not be reused.
ARTIFACT_SCHEMA = 2

#: Environment variable overriding the default on-disk cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable giving the default disk budget (bytes) for
#: :meth:`ArtifactStore.gc`; unset means unbounded.
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


@dataclasses.dataclass(frozen=True)
class StageKeyEntry:
    """Declares what one content-addressed artifact kind hashes.

    The whole-program cache-soundness analyzer
    (:mod:`repro.analysis.rules_cachekey`) diffs ``hashed_fields`` —
    the parameter-dataclass fields this manifest *declares* folded into
    the stage's content key — against the fields the stage function's
    transitive closure actually *reads*.  A read outside the manifest
    is a stale-cache bug (C001); a hashed field nothing reads is a
    spurious-miss smell (C002).

    Attributes
    ----------
    kind:
        The :func:`content_key` kind tag ("build", "flow-cell", ...).
    stage:
        Qualified name of the function that consumes the parameters
        and produces the artifact.
    params_type:
        Qualified name of the parameter dataclass hashed into the key.
    params_param:
        Name of ``stage``'s formal parameter carrying that dataclass.
    hashed_fields:
        The dataclass fields folded into the content key.
    """

    kind: str
    stage: str
    params_type: str
    params_param: str
    hashed_fields: tuple[str, ...]


#: Every content-addressed artifact kind, its producing stage, and the
#: parameter fields its key hashes.  Keep in sync with the
#: ``content_key`` call sites; ``repro lint --static`` enforces the
#: read-vs-hashed diff at CI time.
STAGE_KEY_MANIFEST: tuple[StageKeyEntry, ...] = (
    StageKeyEntry(
        kind="build",
        stage="repro.core.stages.build_stage",
        params_type="repro.core.stages.BuildParams",
        params_param="params",
        hashed_fields=("max_stage_cap",)),
    StageKeyEntry(
        kind="flow-cell",
        stage="repro.runner.runner._execute_job",
        params_type="repro.runner.matrix.JobSpec",
        params_param="job",
        hashed_fields=("design", "policy", "slack", "random_fraction",
                       "random_seed", "lambda_track")),
)


def default_cache_dir() -> Path:
    """The on-disk cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "artifacts"


def default_cache_max_bytes() -> Optional[int]:
    """The disk budget from ``$REPRO_CACHE_MAX_BYTES`` (None = unbounded).

    Read by the CLI and the serve daemon when assembling a store — never
    from worker-reachable code, so the forwarded-env seam stays closed.
    """
    env = os.environ.get(CACHE_MAX_BYTES_ENV)
    if not env:
        return None
    return max(0, int(env))


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form for hashing.

    Dataclasses become ``{field: value}`` dicts tagged with the class
    name, enums their values, tuples/sets lists; anything else must
    already be JSON-native (the fallback ``repr`` would be unstable
    across processes, so unknown objects raise instead).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; json.dumps uses it too.
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(),
                                                         key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_canonical(v) for v in obj), key=repr)
    # numpy scalars quack like python numbers.
    if hasattr(obj, "item") and callable(obj.item):
        return _canonical(obj.item())
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing; "
                    f"pass dataclasses, enums, or JSON-native values")


def fingerprint(obj: Any) -> str:
    """Stable content hash (hex sha256) of any canonicalisable object."""
    blob = json.dumps(_canonical(obj), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def content_key(kind: str, **parts: Any) -> str:
    """The store key for a ``kind`` artifact determined by ``parts``.

    The schema version is folded in so any format change invalidates
    the whole cache rather than deserialising stale layouts.
    """
    return fingerprint({"schema": ARTIFACT_SCHEMA, "kind": kind,
                        "parts": {k: _canonical(v)
                                  for k, v in parts.items()}})


def design_fingerprint(design: Any) -> str:
    """Content hash of a :class:`~repro.netlist.design.Design`.

    The display name is excluded: it identifies nothing the flow
    computes from, so two designs differing only in name share every
    cached artifact (the same decoupling
    :func:`repro.designs.spec_fingerprint` applies at the spec level).
    """
    from repro.io.design_json import design_to_dict
    payload = design_to_dict(design)
    payload.pop("name", None)
    return fingerprint(payload)


def technology_fingerprint(tech: Any) -> str:
    """Content hash of a :class:`~repro.tech.technology.Technology`."""
    return fingerprint(tech)


class ArtifactStore:
    """Two-level (memory bytes + disk pickle) content-addressed store.

    Parameters
    ----------
    root:
        On-disk cache root (:func:`default_cache_dir` when omitted).
    memory_limit:
        Entry cap of the in-memory bytes layer; least-recently-used
        entries fall back to disk-only.
    max_disk_bytes:
        Disk byte budget.  When set, every :meth:`save` that pushes the
        tree over budget triggers :meth:`gc`, evicting the
        least-recently-*used* files (loads refresh recency) — pinned
        keys are never evicted.  ``None`` leaves the tree unbounded.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 memory_limit: int = 64,
                 max_disk_bytes: Optional[int] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.memory_limit = memory_limit
        self.max_disk_bytes = max_disk_bytes
        self._memory: dict[str, bytes] = {}
        self._pins: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location of ``key`` (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.pkl"

    # -- core API ------------------------------------------------------------

    def save(self, key: str, obj: Any) -> None:
        """Persist ``obj`` under ``key`` (atomic rename; best effort)."""
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        obs.counter("artifacts.saves").inc()
        self._remember(key, blob)
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache dir degrades to memory-only.
            return
        if self.max_disk_bytes is not None:
            self.gc()

    def load(self, key: str) -> Optional[Any]:
        """A *fresh* deserialisation of ``key``, or None on miss/corruption."""
        blob = self._memory.get(key)
        if blob is not None:
            # Refresh LRU recency in the memory layer.
            self._memory.pop(key)
            self._memory[key] = blob
        else:
            path = self.path_for(key)
            try:
                blob = path.read_bytes()
            except OSError:
                self.misses += 1
                obs.counter("artifacts.misses").inc()
                return None
            self._touch(path)
        try:
            obj = pickle.loads(blob)
        except Exception:
            # Truncated write or stale class layout: treat as a miss and
            # drop the poisoned entry so the rebuild can overwrite it.
            self.discard(key)
            self.misses += 1
            obs.counter("artifacts.corruptions").inc()
            obs.counter("artifacts.misses").inc()
            return None
        self._remember(key, blob)
        self.hits += 1
        obs.counter("artifacts.hits").inc()
        return obj

    def has(self, key: str) -> bool:
        """True when ``key`` is present in memory or on disk."""
        return key in self._memory or self.path_for(key).exists()

    def discard(self, key: str) -> None:
        """Remove ``key`` from both layers (missing is fine)."""
        self._memory.pop(key, None)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def fetch(self, key: str, build: Callable[..., Any],
              *args: Any, **kwargs: Any) -> Any:
        """``load(key)`` or build-and-save: the one-call cache pattern."""
        obj = self.load(key)
        if obj is None:
            obj = build(*args, **kwargs)
            self.save(key, obj)
        return obj

    # -- pinning (in-flight waiter protection) --------------------------------

    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction while a waiter is in flight.

        Pins nest (a count per key): the serve tier pins a response key
        for as long as any coalesced request is awaiting it, so a GC
        pass under disk pressure can never evict an artifact a live
        client is about to read.
        """
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Drop one pin of ``key`` (the last drop re-enables eviction)."""
        count = self._pins.get(key, 0) - 1
        if count > 0:
            self._pins[key] = count
        else:
            self._pins.pop(key, None)

    def pinned(self, key: str) -> bool:
        """True while ``key`` carries at least one pin."""
        return key in self._pins

    # -- eviction / GC --------------------------------------------------------

    def disk_entries(self) -> list[tuple[str, Path, int, float]]:
        """Every on-disk artifact as ``(key, path, bytes, mtime)``."""
        out: list[tuple[str, Path, int, float]] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob("*/*.pkl")):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path.stem, path, int(stat.st_size),
                        float(stat.st_mtime)))
        return out

    def disk_bytes(self) -> int:
        """Total bytes of the on-disk tree."""
        return sum(size for _, _, size, _ in self.disk_entries())

    def gc(self, max_bytes: Optional[int] = None) -> dict[str, int]:
        """Evict least-recently-used disk entries down to a byte budget.

        ``max_bytes`` overrides the store's configured budget for this
        pass (``None`` falls back to :attr:`max_disk_bytes`; both
        ``None`` means scan-and-report only).  Pinned keys are skipped
        unconditionally — an in-flight waiter's artifact survives any
        amount of pressure — and recency comes from file mtimes, which
        :meth:`load` refreshes on every disk hit.
        """
        budget = self.max_disk_bytes if max_bytes is None else max_bytes
        entries = self.disk_entries()
        total = sum(size for _, _, size, _ in entries)
        evicted = 0
        evicted_bytes = 0
        if budget is not None and total > budget:
            # Oldest mtime first; path breaks ties deterministically.
            for key, path, size, _ in sorted(entries,
                                             key=lambda e: (e[3], str(e[1]))):
                if total <= budget:
                    break
                if self.pinned(key):
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                self._memory.pop(key, None)
                total -= size
                evicted += 1
                evicted_bytes += size
        self.evictions += evicted
        self.evicted_bytes += evicted_bytes
        obs.counter("artifacts.evictions").inc(evicted)
        obs.counter("artifacts.evicted_bytes").inc(evicted_bytes)
        obs.gauge("artifacts.disk_bytes").set(float(total))
        return {"evicted": evicted, "evicted_bytes": evicted_bytes,
                "kept_bytes": total}

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh ``path``'s mtime (LRU recency); best effort."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _remember(self, key: str, blob: bytes) -> None:
        if self.memory_limit <= 0:
            return
        self._memory.pop(key, None)
        self._memory[key] = blob
        while len(self._memory) > self.memory_limit:
            evicted = next(iter(self._memory))
            if evicted == key:  # never evict what we just stored
                break
            self._memory.pop(evicted)

    def stats(self) -> dict[str, int]:
        """Cache-tier counters (per-store-instance, this process only)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "memory_entries": len(self._memory),
                "pinned_keys": len(self._pins),
                "disk_entries": len(self.disk_entries()),
                "disk_bytes": self.disk_bytes()}
