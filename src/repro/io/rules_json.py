"""Persist and re-apply a rule assignment.

The routing is deterministic given the design, so wire ids are stable;
each entry nevertheless carries a geometric signature (layer, track,
span) that is verified on re-application, so a stale file against a
changed design fails loudly instead of silently mis-assigning.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.route.router import RoutingResult
from repro.route.wires import RoutedWire
from repro.tech.ndr import rule_by_name

SCHEMA_VERSION = 1


def _signature(wire: RoutedWire) -> list[object]:
    return [wire.layer.name, wire.track,
            round(wire.segment.lo, 4), round(wire.segment.hi, 4)]


def save_rule_assignment(routing: RoutingResult,
                         path: Union[str, Path],
                         design_name: str = "") -> int:
    """Write the non-default clock wire rules to a JSON file.

    Returns the number of entries written (default-rule wires are
    omitted — they are the baseline).
    """
    entries = []
    for wire in routing.clock_wires:
        if wire.rule.is_default:
            continue
        entries.append({
            "wire_id": wire.wire_id,
            "rule": wire.rule.name.value,
            "sig": _signature(wire),
        })
    payload = {
        "schema": SCHEMA_VERSION,
        "design": design_name,
        "rules": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=1))
    return len(entries)


def load_rule_assignment(path: Union[str, Path]) -> dict[str, Any]:
    """Read a rule-assignment file (validated for schema)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported rules schema "
                         f"{payload.get('schema')!r}")
    return payload


def apply_rule_assignment(routing: RoutingResult,
                          payload: dict[str, Any]) -> int:
    """Stamp a loaded assignment onto a routing; returns entries applied.

    Every entry's geometric signature must match the live wire; a
    mismatch raises ValueError (the file belongs to a different design
    or flow version).
    """
    applied = 0
    for entry in payload["rules"]:
        wire = routing.tracks.wire(entry["wire_id"])
        if _signature(wire) != entry["sig"]:
            raise ValueError(
                f"wire {entry['wire_id']} signature mismatch: file has "
                f"{entry['sig']}, design has {_signature(wire)}")
        routing.assign_rule(entry["wire_id"], rule_by_name(entry["rule"]))
        applied += 1
    return applied
