"""Human-readable per-wire report of a routed, analyzed clock network."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.extract.extractor import Extraction
from repro.reporting.tables import format_table


def write_wire_report(extraction: Extraction, path: Union[str, Path],
                      title: str = "clock wire report") -> int:
    """Write one row per clock wire: geometry, rule, parasitics.

    Returns the number of wires reported.
    """
    routing = extraction.routing
    rows = []
    for wire in sorted(routing.clock_wires, key=lambda w: w.wire_id):
        para = extraction.wires.get(wire.wire_id)
        if para is None:
            continue
        rows.append([
            str(wire.wire_id),
            wire.layer.name,
            str(wire.track),
            f"{wire.length:.1f}",
            wire.rule.name.value,
            f"{para.r * 1000:.1f}",        # ohm
            f"{para.c_total:.2f}",
            f"{para.cc_signal:.3f}",
        ])
    text = format_table(
        title,
        ["wire", "layer", "track", "len um", "rule", "R ohm", "C fF",
         "cc fF"],
        rows)
    Path(path).write_text(text + "\n")
    return len(rows)
