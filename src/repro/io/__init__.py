"""Serialization: designs to/from JSON, rule assignments, wire reports.

Lets a downstream user persist generated benchmarks, exchange designs
with other tools, and save/re-apply a smart-NDR solution without
re-running the optimizer.
"""

from repro.io.design_json import design_to_dict, design_from_dict, save_design, load_design
from repro.io.rules_json import (save_rule_assignment, load_rule_assignment,
                                 apply_rule_assignment)
from repro.io.report import write_wire_report
from repro.io.artifacts import (ArtifactStore, content_key, default_cache_dir,
                                default_cache_max_bytes, design_fingerprint,
                                fingerprint, technology_fingerprint)

__all__ = [
    "ArtifactStore",
    "content_key",
    "default_cache_dir",
    "default_cache_max_bytes",
    "design_fingerprint",
    "fingerprint",
    "technology_fingerprint",
    "design_to_dict",
    "design_from_dict",
    "save_design",
    "load_design",
    "save_rule_assignment",
    "load_rule_assignment",
    "apply_rule_assignment",
    "write_wire_report",
]
